// Copyright (c) memflow authors. MIT license.
//
// Tasks and their declarative properties (Figure 2). A task is a unit of
// computation in a job's DAG; the developer attaches *what* the task needs —
// compute device class, confidentiality, persistence, memory latency — and
// the runtime decides *how* and *where* it runs.

#ifndef MEMFLOW_DATAFLOW_TASK_H_
#define MEMFLOW_DATAFLOW_TASK_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "region/properties.h"
#include "simhw/compute.h"
#include "simhw/ids.h"

namespace memflow::dataflow {

struct TaskTag {};
using TaskId = simhw::StrongId<TaskTag>;

struct JobTag {};
using JobId = simhw::StrongId<JobTag>;

// End-to-end latency class of the task's *job* (distinct from mem_latency,
// which constrains the task's working memory). The serving layer's admission
// model maps a class to a deadline, and placement weighs queue backlog more
// heavily for urgent classes — queue wait, not compute, is what breaks an
// interactive deadline.
enum class SloClass : std::uint8_t {
  kBatch = 0,        // throughput-oriented; tolerates queueing
  kStandard = 1,     // default; backlog priced at face value
  kInteractive = 2,  // user-facing; backlog is 4x as expensive
};

constexpr std::string_view SloClassName(SloClass c) {
  switch (c) {
    case SloClass::kBatch:
      return "batch";
    case SloClass::kStandard:
      return "standard";
    case SloClass::kInteractive:
      return "interactive";
  }
  return "?";
}

// The property sheet of Figure 2c, plus the execution profile the cost model
// needs (how much work, how parallel).
struct TaskProperties {
  // Requirement: the task only runs on this device class (e.g. the face-
  // recognition kernel needs a GPU). Unset = any device.
  std::optional<simhw::ComputeDeviceKind> compute_device;

  // The task handles sensitive data: all its regions are encrypted at rest
  // and inaccessible to other jobs.
  bool confidential = false;

  // The task consumes confidential inputs but emits only non-sensitive
  // derived data (aggregates, counts). Without this, a non-confidential task
  // consuming a confidential producer's output is a confidentiality downgrade
  // the static verifier rejects.
  bool declassifies = false;

  // The task's output must survive crashes (placed on persistent media).
  bool persistent = false;

  // Latency requirement for the task's working memory. kAny = "–" in Fig. 2c.
  region::LatencyClass mem_latency = region::LatencyClass::kAny;

  // End-to-end latency class (see SloClass above). kStandard keeps placement
  // scoring exactly what it was before classes existed.
  SloClass slo = SloClass::kStandard;

  // --- execution profile (for the scheduler's cost model) --------------------

  // Fixed work units executed regardless of input size.
  double base_work = 0.0;
  // Additional work units per input byte.
  double work_per_byte = 0.0;
  // Fraction of the work that is data-parallel (Amdahl split across the
  // device's parallel vs. scalar throughput).
  double parallel_fraction = 0.5;

  // Expected output size. `output_bytes` fixed part + per-input-byte part;
  // used by the runtime to pre-plan placement so handover is zero-copy.
  std::uint64_t output_bytes = 0;
  double output_bytes_per_input_byte = 0.0;

  // Private scratch demand, same shape.
  std::uint64_t scratch_bytes = 0;
  double scratch_bytes_per_input_byte = 0.0;
};

class TaskContext;

// A task body: reads its inputs, uses scratch, produces output, returns OK or
// an error that fails the job. Bodies are pure dataflow logic; all memory
// comes from the TaskContext.
using TaskFn = std::function<Status(TaskContext&)>;

struct TaskSpec {
  std::string name;
  TaskProperties props;
  TaskFn fn;
};

}  // namespace memflow::dataflow

#endif  // MEMFLOW_DATAFLOW_TASK_H_
