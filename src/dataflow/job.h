// Copyright (c) memflow authors. MIT license.
//
// A Job is a DAG of tasks (Figure 2a/2b). The builder API collects tasks and
// dataflow edges; Validate() checks the graph is acyclic and well-formed;
// TopologicalOrder() is what the scheduler consumes.

#ifndef MEMFLOW_DATAFLOW_JOB_H_
#define MEMFLOW_DATAFLOW_JOB_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dataflow/task.h"

namespace memflow::dataflow {

// How a dataflow edge consumes the producer's output. The mode is a
// *declaration* the static verifier checks (analysis::Verify) and the runtime
// honors during handover.
enum class EdgeMode : std::uint8_t {
  // Runtime decides: exclusive transfer to a sole consumer, shared on fan-out
  // (the Figure 4 default).
  kAuto = 0,
  // The consumer demands exclusive ownership. At most one move per output;
  // any other data edge from the same producer is a use-after-transfer.
  kMove,
  // The consumer takes a shared view even if it is the sole consumer.
  kShare,
  // Ordering only: the consumer waits for the producer but receives no data.
  kControl,
};

std::string_view EdgeModeName(EdgeMode mode);

struct EdgeOptions {
  EdgeMode mode = EdgeMode::kAuto;
  // The consumer intends to write the delivered region in place. Invalid on
  // shared deliveries (the verifier rejects writes through shared inputs).
  bool writes_input = false;
};

// Job-wide shared memory demands: the Global State and Global Scratch of
// Table 2, sized by the application.
struct JobOptions {
  std::uint64_t global_state_bytes = 0;
  std::uint64_t global_scratch_bytes = 0;
  // If true, the job's Global State and Global Scratch are confidential:
  // encrypted at rest and invisible to other jobs.
  bool confidential = false;
  // Priority for admission ordering (higher first among ready jobs).
  int priority = 0;
};

class Job {
 public:
  explicit Job(std::string name, JobOptions options = {});

  // Adds a task; returns its id (dense, 0-based within the job).
  TaskId AddTask(std::string name, TaskProperties props, TaskFn fn);

  // Declares a dataflow edge: `from`'s output becomes (part of) `to`'s input
  // (unless the edge is control-only, which orders without delivering data).
  Status Connect(TaskId from, TaskId to, EdgeOptions options = {});

  // Checks the DAG: ids valid, no self-loops or duplicate edges (done at
  // Connect time), acyclic, every task has a body.
  Status Validate() const;

  // Kahn topological order; Validate() must pass first.
  std::vector<TaskId> TopologicalOrder() const;

  // --- accessors ---------------------------------------------------------------

  const std::string& name() const { return name_; }
  const JobOptions& options() const { return options_; }
  std::size_t num_tasks() const { return tasks_.size(); }
  const TaskSpec& task(TaskId id) const;
  TaskSpec& task(TaskId id);

  const std::vector<TaskId>& successors(TaskId id) const;
  const std::vector<TaskId>& predecessors(TaskId id) const;

  // Options of the edge `from` -> `to`; the edge must exist.
  EdgeOptions edge_options(TaskId from, TaskId to) const;

  // Successors/predecessors over data-carrying edges only (mode != kControl),
  // in edge insertion order. This is what ownership handover operates on.
  std::vector<TaskId> DataSuccessors(TaskId id) const;
  std::vector<TaskId> DataPredecessors(TaskId id) const;

  // Tasks with no predecessors / successors.
  std::vector<TaskId> Sources() const;
  std::vector<TaskId> Sinks() const;

 private:
  static std::uint64_t EdgeKey(TaskId from, TaskId to) {
    return (static_cast<std::uint64_t>(from.value) << 32) | to.value;
  }

  std::string name_;
  JobOptions options_;
  std::vector<TaskSpec> tasks_;
  std::vector<std::vector<TaskId>> succ_;
  std::vector<std::vector<TaskId>> pred_;
  std::unordered_map<std::uint64_t, EdgeOptions> edge_options_;
};

}  // namespace memflow::dataflow

#endif  // MEMFLOW_DATAFLOW_JOB_H_
