// Copyright (c) memflow authors. MIT license.
//
// A Job is a DAG of tasks (Figure 2a/2b). The builder API collects tasks and
// dataflow edges; Validate() checks the graph is acyclic and well-formed;
// TopologicalOrder() is what the scheduler consumes.

#ifndef MEMFLOW_DATAFLOW_JOB_H_
#define MEMFLOW_DATAFLOW_JOB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/task.h"

namespace memflow::dataflow {

// Job-wide shared memory demands: the Global State and Global Scratch of
// Table 2, sized by the application.
struct JobOptions {
  std::uint64_t global_state_bytes = 0;
  std::uint64_t global_scratch_bytes = 0;
  // If true, the job's Global State and Global Scratch are confidential:
  // encrypted at rest and invisible to other jobs.
  bool confidential = false;
  // Priority for admission ordering (higher first among ready jobs).
  int priority = 0;
};

class Job {
 public:
  explicit Job(std::string name, JobOptions options = {});

  // Adds a task; returns its id (dense, 0-based within the job).
  TaskId AddTask(std::string name, TaskProperties props, TaskFn fn);

  // Declares a dataflow edge: `from`'s output becomes (part of) `to`'s input.
  Status Connect(TaskId from, TaskId to);

  // Checks the DAG: ids valid, no self-loops or duplicate edges (done at
  // Connect time), acyclic, every task has a body.
  Status Validate() const;

  // Kahn topological order; Validate() must pass first.
  std::vector<TaskId> TopologicalOrder() const;

  // --- accessors ---------------------------------------------------------------

  const std::string& name() const { return name_; }
  const JobOptions& options() const { return options_; }
  std::size_t num_tasks() const { return tasks_.size(); }
  const TaskSpec& task(TaskId id) const;
  TaskSpec& task(TaskId id);

  const std::vector<TaskId>& successors(TaskId id) const;
  const std::vector<TaskId>& predecessors(TaskId id) const;

  // Tasks with no predecessors / successors.
  std::vector<TaskId> Sources() const;
  std::vector<TaskId> Sinks() const;

 private:
  std::string name_;
  JobOptions options_;
  std::vector<TaskSpec> tasks_;
  std::vector<std::vector<TaskId>> succ_;
  std::vector<std::vector<TaskId>> pred_;
};

}  // namespace memflow::dataflow

#endif  // MEMFLOW_DATAFLOW_JOB_H_
