// Copyright (c) memflow authors. MIT license.
//
// TaskContext: the window through which a task body touches memory (§2.3).
// It exposes exactly the paper's programming model —
//
//   * inputs()            regions whose ownership was transferred in,
//   * AllocatePrivateScratch()  thread-local working memory,
//   * AllocateOutput()    the region handed to the successor on completion,
//   * global_state() / global_scratch()  the job-wide shared regions,
//   * OpenSync()/OpenAsync()   the two access interfaces,
//
// and accumulates the simulated cost of everything the body does. The
// executor constructs one context per task attempt and finalizes ownership
// handovers afterwards.

#ifndef MEMFLOW_DATAFLOW_CONTEXT_H_
#define MEMFLOW_DATAFLOW_CONTEXT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dataflow/task.h"
#include "region/region_manager.h"
#include "telemetry/trace.h"

namespace memflow::dataflow {

class TaskContext {
 public:
  // Wiring filled in by the executor.
  struct Init {
    region::RegionManager* regions = nullptr;
    region::Principal self;
    simhw::ComputeDeviceId device;              // where this task runs
    simhw::ComputeDeviceId output_observer;     // where the consumer will run
    TaskProperties props;
    std::vector<region::RegionId> inputs;
    region::RegionId global_state;              // invalid if job declared none
    region::RegionId global_scratch;
    std::uint64_t rng_seed = 0;
    // Cross-check against the static verifier: ownership state each input
    // region must be in while this task runs. Accessors opened on these
    // regions assert the state on every access (empty = no cross-check).
    std::vector<std::pair<region::RegionId, region::OwnershipState>>
        expected_input_states;
  };

  explicit TaskContext(Init init);

  TaskContext(const TaskContext&) = delete;
  TaskContext& operator=(const TaskContext&) = delete;

  // Re-arms a recycled context for a new task attempt (executor context
  // pool, DESIGN.md §14). Equivalent to destroying and re-constructing with
  // `init`, except the scratch/trace vectors keep their capacity — that is
  // the entire point of pooling.
  void Reset(Init init);

  // --- identity ----------------------------------------------------------------

  region::Principal self() const { return init_.self; }
  simhw::ComputeDeviceId device() const { return init_.device; }
  simhw::ComputeDeviceKind device_kind() const;
  const TaskProperties& props() const { return init_.props; }
  region::RegionManager& regions() { return *init_.regions; }

  // --- memory regions ----------------------------------------------------------

  const std::vector<region::RegionId>& inputs() const { return init_.inputs; }

  // Total size of all inputs (for sizing scratch/output).
  std::uint64_t input_bytes() const;

  // Private Scratch (Table 2): thread-local, sync, freed when the task ends.
  Result<region::RegionId> AllocatePrivateScratch(std::uint64_t size,
                                                  region::AccessHint hint = {});

  // The task's output region. Allocated relative to the *consumer's* device
  // so that completion handover is a pure ownership transfer (Figure 4). At
  // most one output per task; its ownership moves to the successor(s).
  Result<region::RegionId> AllocateOutput(std::uint64_t size, region::AccessHint hint = {});

  region::RegionId output() const { return output_; }
  region::RegionId global_state() const { return init_.global_state; }
  region::RegionId global_scratch() const { return init_.global_scratch; }

  // --- access ------------------------------------------------------------------

  Result<region::SyncAccessor> OpenSync(region::RegionId id);
  Result<region::AsyncAccessor> OpenAsync(region::RegionId id);

  // --- cost accounting ----------------------------------------------------------

  // Adds simulated time spent in memory accesses (accessor results).
  void Charge(SimDuration d) { charged_ += d; }

  // Adds simulated compute time for `work` units on this task's device,
  // split by the task's declared parallel fraction.
  void ChargeCompute(double work);

  SimDuration charged() const { return charged_; }

  // Deterministic per-task randomness for workload generators.
  Rng& rng() { return rng_; }

  // --- telemetry ----------------------------------------------------------------

  // Stages a trace event from the task body. Bodies may run concurrently in
  // the executor's parallel phase, so events are buffered per-context here and
  // flushed into the shared trace ring by the executor at commit time, in
  // deterministic (device, job, task) order. Timestamps are filled at flush.
  void StageTrace(telemetry::TraceEvent event) {
    staged_trace_.push_back(std::move(event));
  }

  // Executor-side: staged events drained at commit.
  std::vector<telemetry::TraceEvent>& staged_trace() { return staged_trace_; }

  // Executor-side: regions to free when the task completes.
  const std::vector<region::RegionId>& scratch_regions() const { return scratch_; }

 private:
  region::Properties ScratchProperties() const;
  region::Properties OutputProperties() const;

  Init init_;
  region::RegionId output_;
  std::vector<region::RegionId> scratch_;
  std::vector<telemetry::TraceEvent> staged_trace_;
  SimDuration charged_{};
  Rng rng_;
};

}  // namespace memflow::dataflow

#endif  // MEMFLOW_DATAFLOW_CONTEXT_H_
