// Copyright (c) memflow authors. MIT license.

#include "simhw/device.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace memflow::simhw {

std::string_view MemoryDeviceKindName(MemoryDeviceKind kind) {
  switch (kind) {
    case MemoryDeviceKind::kCache:
      return "Cache";
    case MemoryDeviceKind::kHBM:
      return "HBM";
    case MemoryDeviceKind::kDRAM:
      return "DRAM";
    case MemoryDeviceKind::kGDDR:
      return "GDDR";
    case MemoryDeviceKind::kPMem:
      return "PMem";
    case MemoryDeviceKind::kCxlDram:
      return "CXL-DRAM";
    case MemoryDeviceKind::kDisaggMem:
      return "Disagg.Mem";
    case MemoryDeviceKind::kSSD:
      return "SSD";
    case MemoryDeviceKind::kHDD:
      return "HDD";
  }
  return "?";
}

std::string_view AttachmentName(Attachment a) {
  switch (a) {
    case Attachment::kOnChip:
      return "CPU";
    case Attachment::kMemBus:
      return "CPU";
    case Attachment::kDevLocal:
      return "GPU";
    case Attachment::kPcie:
      return "PCIe";
    case Attachment::kCxl:
      return "PCIe/CXL";
    case Attachment::kNic:
      return "NIC";
    case Attachment::kSata:
      return "SATA";
  }
  return "?";
}

const MemoryDeviceProfile& DefaultProfile(MemoryDeviceKind kind) {
  // Media-only numbers; link/path costs come from the topology. Ordering, not
  // absolute accuracy, is what the Table 1 reproduction checks.
  static const MemoryDeviceProfile kProfiles[kNumMemoryDeviceKinds] = {
      // kCache: on-chip SRAM scratchpad; byte-granular per Table 1.
      {MemoryDeviceKind::kCache, SimDuration::Nanos(2), SimDuration::Nanos(2), 2000.0, 2000.0,
       1, Attachment::kOnChip, true, true, true, false, false, MiB(32)},
      // kHBM: on-package stacks — DRAM-like latency, several-times bandwidth.
      {MemoryDeviceKind::kHBM, SimDuration::Nanos(110), SimDuration::Nanos(110), 800.0, 700.0,
       64, Attachment::kOnChip, true, true, true, false, true, GiB(16)},
      // kDRAM: socket-local DDR5.
      {MemoryDeviceKind::kDRAM, SimDuration::Nanos(90), SimDuration::Nanos(90), 100.0, 90.0,
       64, Attachment::kMemBus, true, true, true, false, true, GiB(64)},
      // kGDDR: GPU-local; higher latency than DDR but very wide.
      {MemoryDeviceKind::kGDDR, SimDuration::Nanos(180), SimDuration::Nanos(180), 700.0, 600.0,
       64, Attachment::kDevLocal, true, true, true, false, true, GiB(24)},
      // kPMem: Optane-like — 256 B media granularity, asymmetric write cost.
      {MemoryDeviceKind::kPMem, SimDuration::Nanos(350), SimDuration::Nanos(700), 38.0, 12.0,
       256, Attachment::kMemBus, true, true, true, true, true, GiB(128)},
      // kCxlDram: DRAM media behind a CXL.mem controller — one extra hop of
      // latency, PCIe5 x8-class bandwidth. Coherence/persistence are per the
      // module; the default models a volatile coherent expander (Table 1 has
      // check-or-cross for both).
      {MemoryDeviceKind::kCxlDram, SimDuration::Nanos(210), SimDuration::Nanos(210), 30.0, 28.0,
       64, Attachment::kCxl, true, true, true, false, true, GiB(256)},
      // kDisaggMem: far memory behind the NIC; microsecond-scale, async-only.
      // Volatile by default (the Carbink model): a memory-node crash loses
      // its contents, which is what the fault-tolerance layer exists for.
      // Table 1 marks persistence as per-deployment; override the profile for
      // persistent far memory.
      {MemoryDeviceKind::kDisaggMem, SimDuration::Micros(3), SimDuration::Micros(3), 12.0, 12.0,
       256, Attachment::kNic, true, false, false, false, true, GiB(512)},
      // kSSD: NVMe flash, block-granular.
      {MemoryDeviceKind::kSSD, SimDuration::Micros(80), SimDuration::Micros(20), 3.5, 2.0,
       KiB(4), Attachment::kPcie, false, false, false, true, true, GiB(1024)},
      // kHDD: seek-dominated.
      {MemoryDeviceKind::kHDD, SimDuration::Millis(8), SimDuration::Millis(8), 0.2, 0.18,
       KiB(4), Attachment::kSata, false, false, false, true, true, GiB(4096)},
  };
  return kProfiles[static_cast<int>(kind)];
}

MemoryDevice::MemoryDevice(MemoryDeviceId id, NodeId node, std::string name,
                           MemoryDeviceProfile profile, std::uint64_t capacity)
    : id_(id), node_(node), name_(std::move(name)), profile_(profile), capacity_(capacity) {
  MEMFLOW_CHECK(capacity > 0);
  MEMFLOW_CHECK(profile_.granularity > 0);
  free_list_.emplace(0, capacity_);
}

Result<Extent> MemoryDevice::Allocate(std::uint64_t size) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (failed_) {
    return Unavailable(name_ + " is failed");
  }
  if (size == 0) {
    return InvalidArgument("zero-sized allocation on " + name_);
  }
  // Round up to granularity so block devices always move whole blocks.
  const std::uint64_t gran = profile_.granularity;
  const std::uint64_t rounded = (size + gran - 1) / gran * gran;

  // First fit.
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->second >= rounded) {
      const std::uint64_t offset = it->first;
      const std::uint64_t remaining = it->second - rounded;
      free_list_.erase(it);
      if (remaining > 0) {
        free_list_.emplace(offset + rounded, remaining);
      }
      live_.emplace(offset, LiveExtent{rounded, {}});
      used_ += rounded;
      peak_used_ = std::max(peak_used_, used_);
      return Extent{id_, offset, rounded};
    }
  }
  return ResourceExhausted(name_ + ": no extent of " + std::to_string(rounded) +
                           " B available (" + std::to_string(free_bytes()) + " B free)");
}

Status MemoryDevice::Free(const Extent& extent) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (extent.device != id_) {
    return InvalidArgument("extent belongs to a different device");
  }
  auto it = live_.find(extent.offset);
  if (it == live_.end() || it->second.size != extent.size) {
    return NotFound("extent not live on " + name_);
  }
  live_.erase(it);
  used_ -= extent.size;

  // Insert into the free list and coalesce with neighbours.
  auto [pos, inserted] = free_list_.emplace(extent.offset, extent.size);
  MEMFLOW_CHECK(inserted);
  // Coalesce with successor.
  auto next = std::next(pos);
  if (next != free_list_.end() && pos->first + pos->second == next->first) {
    pos->second += next->second;
    free_list_.erase(next);
  }
  // Coalesce with predecessor.
  if (pos != free_list_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      free_list_.erase(pos);
    }
  }
  return OkStatus();
}

Status MemoryDevice::CheckAccess(const Extent& extent, std::uint64_t offset,
                                 std::uint64_t size) const {
  if (failed_) {
    return Unavailable(name_ + " is failed");
  }
  if (extent.device != id_) {
    return InvalidArgument("extent belongs to a different device");
  }
  auto it = live_.find(extent.offset);
  if (it == live_.end() || it->second.size != extent.size) {
    return NotFound("extent not live on " + name_);
  }
  if (offset + size > extent.size) {
    return InvalidArgument("access beyond extent bounds on " + name_);
  }
  return OkStatus();
}

std::byte* MemoryDevice::ChunkFor(LiveExtent& live, std::uint64_t chunk_index) {
  auto it = live.chunks.find(chunk_index);
  if (it == live.chunks.end()) {
    auto chunk = std::make_unique<std::byte[]>(kBackingChunk);
    std::memset(chunk.get(), 0, kBackingChunk);
    it = live.chunks.emplace(chunk_index, std::move(chunk)).first;
  }
  return it->second.get();
}

void MemoryDevice::CopyOut(LiveExtent& live, std::uint64_t offset, void* dst,
                           std::uint64_t size) {
  auto* out = static_cast<std::byte*>(dst);
  while (size > 0) {
    const std::uint64_t chunk_index = offset / kBackingChunk;
    const std::uint64_t within = offset % kBackingChunk;
    const std::uint64_t n = std::min(kBackingChunk - within, size);
    // Untouched chunks read as zero without materializing.
    auto it = live.chunks.find(chunk_index);
    if (it == live.chunks.end()) {
      std::memset(out, 0, n);
    } else {
      std::memcpy(out, it->second.get() + within, n);
    }
    out += n;
    offset += n;
    size -= n;
  }
}

void MemoryDevice::CopyIn(LiveExtent& live, std::uint64_t offset, const void* src,
                          std::uint64_t size) {
  const auto* in = static_cast<const std::byte*>(src);
  while (size > 0) {
    const std::uint64_t chunk_index = offset / kBackingChunk;
    const std::uint64_t within = offset % kBackingChunk;
    const std::uint64_t n = std::min(kBackingChunk - within, size);
    std::memcpy(ChunkFor(live, chunk_index) + within, in, n);
    in += n;
    offset += n;
    size -= n;
  }
}

SimDuration MemoryDevice::AccessCost(std::uint64_t bytes, bool sequential,
                                     bool is_write) const {
  const SimDuration lat = is_write ? profile_.write_latency : profile_.read_latency;
  const double bw = is_write ? profile_.write_bw_gbps : profile_.read_bw_gbps;
  const std::uint64_t gran = profile_.granularity;
  const std::uint64_t units = (bytes + gran - 1) / gran;
  // Transfer time at sustained bandwidth (GB/s == bytes/ns).
  const auto transfer = SimDuration::Nanos(
      static_cast<std::int64_t>(static_cast<double>(units * gran) / bw));
  if (sequential) {
    // One media latency to start the stream, then bandwidth-bound.
    return lat + transfer;
  }
  // Random: pay media latency per granularity unit; transfers of adjacent
  // units do not pipeline.
  return SimDuration::Nanos(lat.ns * static_cast<std::int64_t>(units)) + transfer;
}

void MemoryDevice::ChargeStats(bool is_write, std::uint64_t bytes, SimDuration cost) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (is_write) {
    stats_.writes++;
    stats_.bytes_written += bytes;
  } else {
    stats_.reads++;
    stats_.bytes_read += bytes;
  }
  stats_.busy_time += cost;
}

Result<SimDuration> MemoryDevice::Read(const Extent& extent, std::uint64_t offset, void* dst,
                                       std::uint64_t size) {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  MEMFLOW_RETURN_IF_ERROR(CheckAccess(extent, offset, size));
  CopyOut(live_.at(extent.offset), offset, dst, size);
  const SimDuration cost = AccessCost(size, /*sequential=*/true, /*is_write=*/false);
  ChargeStats(/*is_write=*/false, size, cost);
  return cost;
}

Result<SimDuration> MemoryDevice::Write(const Extent& extent, std::uint64_t offset,
                                        const void* src, std::uint64_t size) {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  MEMFLOW_RETURN_IF_ERROR(CheckAccess(extent, offset, size));
  CopyIn(live_.at(extent.offset), offset, src, size);
  const SimDuration cost = AccessCost(size, /*sequential=*/true, /*is_write=*/true);
  ChargeStats(/*is_write=*/true, size, cost);
  return cost;
}

SimDuration MemoryDevice::ChargeRead(std::uint64_t bytes, bool sequential) {
  const SimDuration cost = AccessCost(bytes, sequential, /*is_write=*/false);
  ChargeStats(/*is_write=*/false, bytes, cost);
  return cost;
}

SimDuration MemoryDevice::ChargeWrite(std::uint64_t bytes, bool sequential) {
  const SimDuration cost = AccessCost(bytes, sequential, /*is_write=*/true);
  ChargeStats(/*is_write=*/true, bytes, cost);
  return cost;
}

void MemoryDevice::Fail() {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  failed_ = true;
  if (!profile_.persistent) {
    // Volatile media loses its contents: drop all backing stores. The extents
    // stay allocated (owners must observe the fault and recover).
    for (auto& [offset, live] : live_) {
      live.chunks.clear();
    }
    MEMFLOW_LOG(kInfo) << name_ << " failed; volatile contents lost";
  } else {
    MEMFLOW_LOG(kInfo) << name_ << " failed; persistent contents retained";
  }
}

void MemoryDevice::Recover() {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  failed_ = false;
}

}  // namespace memflow::simhw
