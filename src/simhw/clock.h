// Copyright (c) memflow authors. MIT license.
//
// Virtual time. All simulated costs (memory accesses, link transfers, compute)
// are charged in SimDuration; the discrete-event scheduler advances a
// VirtualClock. Wall-clock time never enters the simulation.

#ifndef MEMFLOW_SIMHW_CLOCK_H_
#define MEMFLOW_SIMHW_CLOCK_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/units.h"

namespace memflow::simhw {

// Monotonic simulated clock.
class VirtualClock {
 public:
  SimTime now() const { return now_; }

  void AdvanceTo(SimTime t) {
    MEMFLOW_CHECK_MSG(t >= now_, "virtual clock must be monotonic");
    now_ = t;
  }

  void Advance(SimDuration d) {
    MEMFLOW_CHECK(d.ns >= 0);
    now_ = now_ + d;
  }

  void Reset() { now_ = SimTime{}; }

 private:
  SimTime now_{};
};

// Discrete-event queue: events fire in timestamp order; ties break by
// insertion sequence so runs are fully deterministic.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  void Schedule(SimTime at, Callback cb) {
    heap_.push(Event{at, next_seq_++, std::move(cb)});
  }

  void ScheduleAfter(const VirtualClock& clock, SimDuration delay, Callback cb) {
    Schedule(clock.now() + delay, std::move(cb));
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  SimTime next_time() const {
    MEMFLOW_CHECK(!heap_.empty());
    return heap_.top().at;
  }

  // Pops and runs the earliest event, advancing `clock` to its timestamp.
  void RunNext(VirtualClock& clock) {
    MEMFLOW_CHECK(!heap_.empty());
    // Copy out before pop: the callback may schedule new events.
    Event ev = heap_.top();
    heap_.pop();
    clock.AdvanceTo(ev.at);
    ev.cb(ev.at);
  }

  // Pops and runs every event due at the earliest timestamp in one pass,
  // advancing `clock` once. Events a callback schedules *at that same
  // timestamp* are also run (they carry a later seq, preserving the exact
  // order RunNext would have produced); later-timestamped events stay queued.
  // One heap pop per event, but a single clock advance and loop dispatch for
  // the whole timestamp cohort — the dispatch loop's drain phase calls this
  // instead of re-entering per event. Returns the number of events executed.
  std::uint64_t RunAllDue(VirtualClock& clock) {
    MEMFLOW_CHECK(!heap_.empty());
    const SimTime due = heap_.top().at;
    clock.AdvanceTo(due);
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top().at == due) {
      // Move out before pop: the callback may schedule new events.
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      ev.cb(due);
      ++n;
    }
    return n;
  }

  // Drains the queue. Returns the number of events executed.
  std::uint64_t RunUntilIdle(VirtualClock& clock) {
    std::uint64_t n = 0;
    while (!heap_.empty()) {
      RunNext(clock);
      ++n;
    }
    return n;
  }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback cb;

    bool operator>(const Event& o) const {
      if (at != o.at) {
        return at > o.at;
      }
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace memflow::simhw

#endif  // MEMFLOW_SIMHW_CLOCK_H_
