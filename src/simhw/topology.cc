// Copyright (c) memflow authors. MIT license.

#include "simhw/topology.h"

#include <algorithm>
#include <queue>

namespace memflow::simhw {

std::string_view LinkKindName(LinkKind kind) {
  switch (kind) {
    case LinkKind::kOnChip:
      return "on-chip";
    case LinkKind::kMemBus:
      return "mem-bus";
    case LinkKind::kUPI:
      return "UPI";
    case LinkKind::kPcie:
      return "PCIe";
    case LinkKind::kCxl:
      return "CXL";
    case LinkKind::kNic:
      return "NIC";
    case LinkKind::kSata:
      return "SATA";
  }
  return "?";
}

LinkDesc DefaultLink(LinkKind kind) {
  switch (kind) {
    case LinkKind::kOnChip:
      return {kind, SimDuration::Nanos(5), 1000.0, true, true};
    case LinkKind::kMemBus:
      return {kind, SimDuration::Nanos(10), 120.0, true, true};
    case LinkKind::kUPI:
      // Crossing the socket interconnect roughly doubles DRAM latency and
      // halves attainable bandwidth — the substrate of the NUMA-3x claim.
      return {kind, SimDuration::Nanos(110), 40.0, true, true};
    case LinkKind::kPcie:
      return {kind, SimDuration::Nanos(300), 32.0, false, true};
    case LinkKind::kCxl:
      return {kind, SimDuration::Nanos(120), 30.0, true, true};
    case LinkKind::kNic:
      return {kind, SimDuration::Nanos(1500), 12.0, false, false};
    case LinkKind::kSata:
      return {kind, SimDuration::Micros(10), 0.55, false, false};
  }
  return {};
}

VertexId Topology::AddVertex(std::string name, bool transit) {
  const auto id = VertexId(static_cast<std::uint32_t>(vertex_names_.size()));
  vertex_names_.push_back(std::move(name));
  transit_.push_back(transit);
  adjacency_.emplace_back();
  InvalidateCache();
  return id;
}

LinkId Topology::Connect(VertexId a, VertexId b, LinkDesc desc) {
  MEMFLOW_CHECK(a.value < vertex_names_.size() && b.value < vertex_names_.size());
  MEMFLOW_CHECK(a != b);
  MEMFLOW_CHECK(desc.bw_gbps > 0);
  const auto idx = static_cast<std::uint32_t>(links_.size());
  links_.push_back(Link{a, b, desc, false});
  adjacency_[a.value].push_back(idx);
  adjacency_[b.value].push_back(idx);
  InvalidateCache();
  return LinkId(idx);
}

Result<PathInfo> Topology::Path(VertexId from, VertexId to) const {
  if (from.value >= vertex_names_.size() || to.value >= vertex_names_.size()) {
    return InvalidArgument("unknown vertex");
  }
  if (from == to) {
    // Same endpoint: zero-cost path with unconstrained bandwidth.
    return PathInfo{SimDuration{}, std::numeric_limits<double>::infinity(), true, true, 0};
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(from.value) << 32) | to.value;
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    if (auto it = cache_.find(key); it != cache_.end()) {
      return it->second;
    }
  }

  // Dijkstra on latency; properties are folded along the chosen path.
  struct State {
    std::int64_t dist;
    std::uint32_t vertex;
    bool operator>(const State& o) const { return dist > o.dist; }
  };
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> dist(vertex_names_.size(), kInf);
  std::vector<std::int32_t> via_link(vertex_names_.size(), -1);
  std::vector<std::uint32_t> prev(vertex_names_.size(), 0);
  std::priority_queue<State, std::vector<State>, std::greater<>> heap;

  dist[from.value] = 0;
  heap.push({0, from.value});
  while (!heap.empty()) {
    const State s = heap.top();
    heap.pop();
    if (s.dist != dist[s.vertex]) {
      continue;
    }
    if (s.vertex == to.value) {
      break;
    }
    // Traffic may not route *through* endpoint devices (e.g. a memory module
    // is not a switch), only start or terminate at them.
    if (s.vertex != from.value && !transit_[s.vertex]) {
      continue;
    }
    for (const std::uint32_t li : adjacency_[s.vertex]) {
      const Link& link = links_[li];
      if (link.failed) {
        continue;
      }
      const std::uint32_t other = (link.a.value == s.vertex) ? link.b.value : link.a.value;
      const std::int64_t nd = s.dist + link.desc.latency.ns;
      if (nd < dist[other]) {
        dist[other] = nd;
        via_link[other] = static_cast<std::int32_t>(li);
        prev[other] = s.vertex;
        heap.push({nd, other});
      }
    }
  }

  if (dist[to.value] == kInf) {
    return NotFound("no path from " + vertex_names_[from.value] + " to " +
                    vertex_names_[to.value]);
  }

  PathInfo info{SimDuration::Nanos(dist[to.value]),
                std::numeric_limits<double>::infinity(), true, true, 0};
  for (std::uint32_t v = to.value; v != from.value; v = prev[v]) {
    const Link& link = links_[static_cast<std::uint32_t>(via_link[v])];
    info.bw_gbps = std::min(info.bw_gbps, link.desc.bw_gbps);
    info.coherent = info.coherent && link.desc.coherent;
    info.loadstore = info.loadstore && link.desc.loadstore;
    info.hops++;
  }
  {
    std::unique_lock<std::shared_mutex> lock(cache_mu_);
    cache_.emplace(key, info);
  }
  return info;
}

Status Topology::FailLink(LinkId link) {
  if (link.value >= links_.size()) {
    return NotFound("unknown link");
  }
  links_[link.value].failed = true;
  InvalidateCache();
  return OkStatus();
}

Status Topology::RecoverLink(LinkId link) {
  if (link.value >= links_.size()) {
    return NotFound("unknown link");
  }
  links_[link.value].failed = false;
  InvalidateCache();
  return OkStatus();
}

}  // namespace memflow::simhw
