// Copyright (c) memflow authors. MIT license.
//
// Pre-wired cluster topologies used by the experiments:
//
//   MakeComputeCentricRack  — Figure 1a: servers own their memory; other
//                             servers reach it only through the NIC.
//   MakeMemoryCentricPool   — Figure 1b: compute devices share one memory
//                             pool behind a CXL switch.
//   MakeTwoSocketNuma       — the substrate of the intro's "NUMA up to 3x".
//   MakeTieredStorageHost   — DRAM/PMem/SSD/HDD box for the heterogeneous-
//                             storage placement claim.
//   MakeCxlExpansionHost    — Sapphire-Rapids-like host (CPU+DRAM+CXL
//                             expander, GPU+GDDR) used by Figures 3 and 4.
//   MakeDisaggRack          — compute nodes + far-memory nodes behind a
//                             fabric, used by the fault-tolerance experiments.

#ifndef MEMFLOW_SIMHW_PRESETS_H_
#define MEMFLOW_SIMHW_PRESETS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "simhw/cluster.h"

namespace memflow::simhw {

struct RackOptions {
  int servers = 4;
  std::uint64_t dram_per_server = GiB(8);
  std::uint64_t pmem_per_server = GiB(16);
  std::uint64_t gddr_per_gpu = GiB(4);
  bool gpu_on_every_server = false;  // otherwise every second server
};

// Figure 1a. Returns the cluster; per-server device ids are discoverable via
// Cluster::node().
std::unique_ptr<Cluster> MakeComputeCentricRack(const RackOptions& opts = {});

struct PoolOptions {
  int cpus = 2;
  int gpus = 2;
  int tpus = 1;
  int fpgas = 1;
  std::uint64_t pool_dram = GiB(32);
  std::uint64_t pool_gddr = GiB(8);
  std::uint64_t pool_pmem = GiB(64);
  std::uint64_t pool_cxl_dram = GiB(64);
  std::uint64_t local_hbm = GiB(2);  // small device-local scratch per compute
};

// Figure 1b.
std::unique_ptr<Cluster> MakeMemoryCentricPool(const PoolOptions& opts = {});

// Two CPU sockets with local DRAM each, joined by UPI.
struct NumaHandles {
  std::unique_ptr<Cluster> cluster;
  ComputeDeviceId cpu0, cpu1;
  MemoryDeviceId dram0, dram1;
};
NumaHandles MakeTwoSocketNuma(std::uint64_t dram_per_socket = GiB(16));

// One CPU with a heterogeneous storage/memory hierarchy.
struct TieredHandles {
  std::unique_ptr<Cluster> cluster;
  ComputeDeviceId cpu;
  MemoryDeviceId dram, pmem, ssd, hdd;
};
TieredHandles MakeTieredStorageHost(std::uint64_t dram = GiB(4), std::uint64_t pmem = GiB(16),
                                    std::uint64_t ssd = GiB(64), std::uint64_t hdd = GiB(256));

// Single host with CPU (+DRAM, +CXL-DRAM expander, +PMem) and GPU (+GDDR),
// CPU<->GPU over PCIe; the CXL expander hangs off a CXL port shared by both.
struct CxlHostHandles {
  std::unique_ptr<Cluster> cluster;
  ComputeDeviceId cpu, gpu;
  MemoryDeviceId cache, hbm, dram, pmem, cxl_dram, gddr, disagg, ssd, hdd;
};
CxlHostHandles MakeCxlExpansionHost();

struct DisaggOptions {
  int compute_nodes = 2;
  int memory_nodes = 4;
  std::uint64_t local_dram = GiB(2);
  std::uint64_t far_mem_per_node = GiB(16);
};
struct DisaggHandles {
  std::unique_ptr<Cluster> cluster;
  std::vector<ComputeDeviceId> cpus;
  std::vector<MemoryDeviceId> local_dram;
  std::vector<MemoryDeviceId> far_mem;   // one per memory node
  std::vector<NodeId> memory_node_ids;
};
DisaggHandles MakeDisaggRack(const DisaggOptions& opts = {});

}  // namespace memflow::simhw

#endif  // MEMFLOW_SIMHW_PRESETS_H_
