// Copyright (c) memflow authors. MIT license.

#include "simhw/presets.h"

namespace memflow::simhw {

std::unique_ptr<Cluster> MakeComputeCentricRack(const RackOptions& opts) {
  auto cluster = std::make_unique<Cluster>();
  const VertexId tor = cluster->AddSwitch("tor-fabric");

  for (int i = 0; i < opts.servers; ++i) {
    const NodeId node = cluster->AddNode("server" + std::to_string(i));
    const ComputeDeviceId cpu =
        cluster->AddCompute(node, ComputeDeviceKind::kCPU, "cpu" + std::to_string(i));
    const MemoryDeviceId dram = cluster->AddMemory(node, MemoryDeviceKind::kDRAM,
                                                   opts.dram_per_server,
                                                   "dram" + std::to_string(i));
    cluster->Link(cluster->VertexOf(cpu), cluster->VertexOf(dram), LinkKind::kMemBus);

    if (opts.pmem_per_server > 0) {
      const MemoryDeviceId pmem = cluster->AddMemory(node, MemoryDeviceKind::kPMem,
                                                     opts.pmem_per_server,
                                                     "pmem" + std::to_string(i));
      cluster->Link(cluster->VertexOf(cpu), cluster->VertexOf(pmem), LinkKind::kMemBus);
    }

    const bool has_gpu = opts.gpu_on_every_server || (i % 2 == 0);
    if (has_gpu) {
      const ComputeDeviceId gpu =
          cluster->AddCompute(node, ComputeDeviceKind::kGPU, "gpu" + std::to_string(i));
      const MemoryDeviceId gddr = cluster->AddMemory(node, MemoryDeviceKind::kGDDR,
                                                     opts.gddr_per_gpu,
                                                     "gddr" + std::to_string(i));
      cluster->Link(cluster->VertexOf(gpu), cluster->VertexOf(gddr), LinkKind::kOnChip);
      cluster->Link(cluster->VertexOf(cpu), cluster->VertexOf(gpu), LinkKind::kPcie);
    }

    // Server reaches the rack fabric through its NIC (no load/store).
    cluster->Link(cluster->VertexOf(cpu), tor, LinkKind::kNic);
  }
  return cluster;
}

std::unique_ptr<Cluster> MakeMemoryCentricPool(const PoolOptions& opts) {
  auto cluster = std::make_unique<Cluster>();
  const VertexId cxl_switch = cluster->AddSwitch("cxl-switch");

  // The shared memory pool: one node, many device types (Figure 1b's box).
  const NodeId pool = cluster->AddNode("memory-pool");
  const auto add_pool_mem = [&](MemoryDeviceKind kind, std::uint64_t cap, const char* name) {
    if (cap == 0) {
      return;
    }
    const MemoryDeviceId m = cluster->AddMemory(pool, kind, cap, name);
    cluster->Link(cluster->VertexOf(m), cxl_switch, LinkKind::kCxl);
  };
  add_pool_mem(MemoryDeviceKind::kDRAM, opts.pool_dram, "pool-dram");
  add_pool_mem(MemoryDeviceKind::kGDDR, opts.pool_gddr, "pool-gddr");
  add_pool_mem(MemoryDeviceKind::kPMem, opts.pool_pmem, "pool-pmem");
  add_pool_mem(MemoryDeviceKind::kCxlDram, opts.pool_cxl_dram, "pool-cxl-dram");

  // Compute devices: each on its own node, local HBM scratch, CXL to the pool.
  const auto add_compute = [&](ComputeDeviceKind kind, int count, const char* prefix) {
    for (int i = 0; i < count; ++i) {
      const std::string name = std::string(prefix) + std::to_string(i);
      const NodeId node = cluster->AddNode("node-" + name);
      const ComputeDeviceId c = cluster->AddCompute(node, kind, name);
      if (opts.local_hbm > 0) {
        const MemoryDeviceId hbm =
            cluster->AddMemory(node, MemoryDeviceKind::kHBM, opts.local_hbm, name + "-hbm");
        cluster->Link(cluster->VertexOf(c), cluster->VertexOf(hbm), LinkKind::kOnChip);
      }
      cluster->Link(cluster->VertexOf(c), cxl_switch, LinkKind::kCxl);
    }
  };
  add_compute(ComputeDeviceKind::kCPU, opts.cpus, "cpu");
  add_compute(ComputeDeviceKind::kGPU, opts.gpus, "gpu");
  add_compute(ComputeDeviceKind::kTPU, opts.tpus, "tpu");
  add_compute(ComputeDeviceKind::kFPGA, opts.fpgas, "fpga");
  return cluster;
}

NumaHandles MakeTwoSocketNuma(std::uint64_t dram_per_socket) {
  NumaHandles h;
  h.cluster = std::make_unique<Cluster>();
  Cluster& c = *h.cluster;
  const NodeId node = c.AddNode("numa-host");
  h.cpu0 = c.AddCompute(node, ComputeDeviceKind::kCPU, "socket0");
  h.cpu1 = c.AddCompute(node, ComputeDeviceKind::kCPU, "socket1");
  h.dram0 = c.AddMemory(node, MemoryDeviceKind::kDRAM, dram_per_socket, "dram0");
  h.dram1 = c.AddMemory(node, MemoryDeviceKind::kDRAM, dram_per_socket, "dram1");
  c.Link(c.VertexOf(h.cpu0), c.VertexOf(h.dram0), LinkKind::kMemBus);
  c.Link(c.VertexOf(h.cpu1), c.VertexOf(h.dram1), LinkKind::kMemBus);
  c.Link(c.VertexOf(h.cpu0), c.VertexOf(h.cpu1), LinkKind::kUPI);
  return h;
}

TieredHandles MakeTieredStorageHost(std::uint64_t dram, std::uint64_t pmem, std::uint64_t ssd,
                                    std::uint64_t hdd) {
  TieredHandles h;
  h.cluster = std::make_unique<Cluster>();
  Cluster& c = *h.cluster;
  const NodeId node = c.AddNode("tiered-host");
  h.cpu = c.AddCompute(node, ComputeDeviceKind::kCPU, "cpu");
  h.dram = c.AddMemory(node, MemoryDeviceKind::kDRAM, dram, "dram");
  h.pmem = c.AddMemory(node, MemoryDeviceKind::kPMem, pmem, "pmem");
  h.ssd = c.AddMemory(node, MemoryDeviceKind::kSSD, ssd, "ssd");
  h.hdd = c.AddMemory(node, MemoryDeviceKind::kHDD, hdd, "hdd");
  c.Link(c.VertexOf(h.cpu), c.VertexOf(h.dram), LinkKind::kMemBus);
  c.Link(c.VertexOf(h.cpu), c.VertexOf(h.pmem), LinkKind::kMemBus);
  c.Link(c.VertexOf(h.cpu), c.VertexOf(h.ssd), LinkKind::kPcie);
  c.Link(c.VertexOf(h.cpu), c.VertexOf(h.hdd), LinkKind::kSata);
  return h;
}

CxlHostHandles MakeCxlExpansionHost() {
  CxlHostHandles h;
  h.cluster = std::make_unique<Cluster>();
  Cluster& c = *h.cluster;
  const NodeId node = c.AddNode("cxl-host");
  h.cpu = c.AddCompute(node, ComputeDeviceKind::kCPU, "cpu");
  h.gpu = c.AddCompute(node, ComputeDeviceKind::kGPU, "gpu");

  h.cache = c.AddMemory(node, MemoryDeviceKind::kCache, 0, "llc");
  h.hbm = c.AddMemory(node, MemoryDeviceKind::kHBM, 0, "hbm");
  h.dram = c.AddMemory(node, MemoryDeviceKind::kDRAM, 0, "dram");
  h.pmem = c.AddMemory(node, MemoryDeviceKind::kPMem, 0, "pmem");
  h.cxl_dram = c.AddMemory(node, MemoryDeviceKind::kCxlDram, 0, "cxl-dram");
  h.gddr = c.AddMemory(node, MemoryDeviceKind::kGDDR, 0, "gddr");
  h.ssd = c.AddMemory(node, MemoryDeviceKind::kSSD, 0, "ssd");
  h.hdd = c.AddMemory(node, MemoryDeviceKind::kHDD, 0, "hdd");

  c.Link(c.VertexOf(h.cpu), c.VertexOf(h.cache), LinkKind::kOnChip);
  c.Link(c.VertexOf(h.cpu), c.VertexOf(h.hbm), LinkKind::kOnChip);
  c.Link(c.VertexOf(h.cpu), c.VertexOf(h.dram), LinkKind::kMemBus);
  c.Link(c.VertexOf(h.cpu), c.VertexOf(h.pmem), LinkKind::kMemBus);
  c.Link(c.VertexOf(h.cpu), c.VertexOf(h.cxl_dram), LinkKind::kCxl);
  c.Link(c.VertexOf(h.cpu), c.VertexOf(h.ssd), LinkKind::kPcie);
  c.Link(c.VertexOf(h.cpu), c.VertexOf(h.hdd), LinkKind::kSata);

  c.Link(c.VertexOf(h.gpu), c.VertexOf(h.gddr), LinkKind::kOnChip);
  c.Link(c.VertexOf(h.cpu), c.VertexOf(h.gpu), LinkKind::kPcie);
  // The GPU can also reach the CXL expander coherently (CXL.cache).
  c.Link(c.VertexOf(h.gpu), c.VertexOf(h.cxl_dram), LinkKind::kCxl);

  // Far memory behind the NIC (one hop of fabric).
  const NodeId far = c.AddNode("far-node");
  h.disagg = c.AddMemory(far, MemoryDeviceKind::kDisaggMem, 0, "far-mem");
  const VertexId fabric = c.AddSwitch("fabric");
  c.Link(c.VertexOf(h.cpu), fabric, LinkKind::kNic);
  c.Link(fabric, c.VertexOf(h.disagg), LinkKind::kNic);
  return h;
}

DisaggHandles MakeDisaggRack(const DisaggOptions& opts) {
  DisaggHandles h;
  h.cluster = std::make_unique<Cluster>();
  Cluster& c = *h.cluster;
  const VertexId fabric = c.AddSwitch("fabric");

  for (int i = 0; i < opts.compute_nodes; ++i) {
    const NodeId node = c.AddNode("compute" + std::to_string(i));
    const ComputeDeviceId cpu =
        c.AddCompute(node, ComputeDeviceKind::kCPU, "cpu" + std::to_string(i));
    const MemoryDeviceId dram = c.AddMemory(node, MemoryDeviceKind::kDRAM, opts.local_dram,
                                            "local-dram" + std::to_string(i));
    c.Link(c.VertexOf(cpu), c.VertexOf(dram), LinkKind::kMemBus);
    c.Link(c.VertexOf(cpu), fabric, LinkKind::kNic);
    h.cpus.push_back(cpu);
    h.local_dram.push_back(dram);
  }

  for (int i = 0; i < opts.memory_nodes; ++i) {
    const NodeId node = c.AddNode("memnode" + std::to_string(i));
    const MemoryDeviceId mem = c.AddMemory(node, MemoryDeviceKind::kDisaggMem,
                                           opts.far_mem_per_node,
                                           "far-mem" + std::to_string(i));
    c.Link(c.VertexOf(mem), fabric, LinkKind::kNic);
    h.far_mem.push_back(mem);
    h.memory_node_ids.push_back(node);
  }
  return h;
}

}  // namespace memflow::simhw
