// Copyright (c) memflow authors. MIT license.
//
// Simulated compute devices: CPUs and the accelerators the paper's Figure 1
// pools (GPU, TPU, FPGA, DPU). A compute device executes task work measured in
// abstract "work units"; throughput factors determine the simulated compute
// time. Accelerators are only *eligible* for tasks whose properties request
// them (Figure 2c "comp. device").

#ifndef MEMFLOW_SIMHW_COMPUTE_H_
#define MEMFLOW_SIMHW_COMPUTE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/units.h"
#include "simhw/ids.h"

namespace memflow::simhw {

enum class ComputeDeviceKind : std::uint8_t { kCPU, kGPU, kTPU, kFPGA, kDPU };

inline constexpr int kNumComputeDeviceKinds = 5;

std::string_view ComputeDeviceKindName(ComputeDeviceKind kind);

// Per-kind default execution characteristics. `parallel_throughput` is the
// relative rate for data-parallel work (a GPU runs data-parallel kernels ~16x
// a CPU socket); `scalar_throughput` for control-heavy work (where CPUs win).
struct ComputeProfile {
  ComputeDeviceKind kind = ComputeDeviceKind::kCPU;
  double parallel_throughput = 1.0;  // work units per ns, data-parallel
  double scalar_throughput = 1.0;    // work units per ns, scalar/branchy
  int hw_queues = 1;                 // concurrent tasks the device can host
};

const ComputeProfile& DefaultComputeProfile(ComputeDeviceKind kind);

// A compute device instance placed on a node.
class ComputeDevice {
 public:
  ComputeDevice(ComputeDeviceId id, NodeId node, std::string name, ComputeProfile profile)
      : id_(id), node_(node), name_(std::move(name)), profile_(profile) {}

  ComputeDeviceId id() const { return id_; }
  NodeId node() const { return node_; }
  const std::string& name() const { return name_; }
  const ComputeProfile& profile() const { return profile_; }
  ComputeDeviceKind kind() const { return profile_.kind; }

  // Simulated time to execute `work` units. `parallel_fraction` follows
  // Amdahl: that fraction runs at parallel throughput, the rest scalar.
  SimDuration ComputeTime(double work, double parallel_fraction) const;

  void Fail() { failed_ = true; }
  void Recover() { failed_ = false; }
  bool failed() const { return failed_; }

  // Scheduler bookkeeping: number of tasks currently resident, and the
  // estimated simulated-ns of work already committed to this device by the
  // planner but not yet finished (drained as tasks complete).
  int active_tasks = 0;
  double planned_ns = 0;

 private:
  ComputeDeviceId id_;
  NodeId node_;
  std::string name_;
  ComputeProfile profile_;
  bool failed_ = false;
};

}  // namespace memflow::simhw

#endif  // MEMFLOW_SIMHW_COMPUTE_H_
