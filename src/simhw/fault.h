// Copyright (c) memflow authors. MIT license.
//
// Deterministic fault injection (the paper's Challenge 8: node faults, network
// errors, planned maintenance are *common* at datacenter scale). A fault
// schedule is a list of timestamped events applied to the cluster as virtual
// time passes; random schedules are generated from a seed so every run is
// reproducible.

#ifndef MEMFLOW_SIMHW_FAULT_H_
#define MEMFLOW_SIMHW_FAULT_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "simhw/cluster.h"

namespace memflow::simhw {

struct FaultEvent {
  enum class Kind {
    kDeviceFail,
    kDeviceRecover,
    kNodeCrash,
    kNodeRecover,
    kLinkFail,
    kLinkRecover,
  };

  SimTime at;
  Kind kind = Kind::kNodeCrash;
  // Exactly one of these is meaningful, per kind.
  MemoryDeviceId device;
  NodeId node;
  LinkId link;
};

class FaultInjector {
 public:
  explicit FaultInjector(Cluster& cluster) : cluster_(&cluster) {}

  void Add(FaultEvent event);

  // Convenience constructors for single events.
  void FailDeviceAt(SimTime at, MemoryDeviceId device);
  void RecoverDeviceAt(SimTime at, MemoryDeviceId device);
  void CrashNodeAt(SimTime at, NodeId node);
  void RecoverNodeAt(SimTime at, NodeId node);

  // Generates crash/recover pairs for each node: exponential inter-crash times
  // with mean `mtbf`, repair after `mttr`, until `horizon`.
  void GenerateNodeCrashes(Rng& rng, std::span<const NodeId> nodes, SimDuration mtbf,
                           SimDuration mttr, SimTime horizon);

  // Applies every event with timestamp <= now that has not fired yet.
  // Returns the number applied. Call from the scheduler as time advances.
  //
  // Ordering guarantee: events apply in ascending timestamp order, and events
  // sharing a timestamp apply in the order they were Add()ed (the schedule is
  // stable-sorted). Generated fault plans rely on this — a fail event and a
  // zero-delay repair at the same instant must still fail first, then recover
  // (tests/fault_injector_test.cc pins the contract).
  std::size_t ApplyDue(SimTime now);

  // Events already applied, in application order (for reports/tests).
  const std::vector<FaultEvent>& fired() const { return fired_; }
  std::size_t pending() const { return pending_.size() - next_; }

  // Timestamps of all not-yet-applied events, sorted ascending. The runtime
  // uses these to schedule fault application into its event loop.
  std::vector<SimTime> PendingTimes();

 private:
  void Apply(const FaultEvent& event);

  Cluster* cluster_;
  std::vector<FaultEvent> pending_;  // sorted by time once Finalize'd
  std::vector<FaultEvent> fired_;
  std::size_t next_ = 0;
  bool sorted_ = true;
};

}  // namespace memflow::simhw

#endif  // MEMFLOW_SIMHW_FAULT_H_
