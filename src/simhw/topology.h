// Copyright (c) memflow authors. MIT license.
//
// Interconnect topology. Compute devices, memory devices, and switches are
// vertices; links (on-chip, memory bus, UPI, PCIe, CXL, NIC fabric, SATA) are
// edges with latency, bandwidth, coherence, and load/store capability. The
// cost of accessing a memory device *from* a compute device is the media cost
// plus the path cost — so the same memory looks different from different
// observers, which is the mechanism behind the paper's Figure 3 and the NUMA
// claim in its introduction.

#ifndef MEMFLOW_SIMHW_TOPOLOGY_H_
#define MEMFLOW_SIMHW_TOPOLOGY_H_

#include <cstdint>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "simhw/ids.h"

namespace memflow::simhw {

enum class LinkKind : std::uint8_t {
  kOnChip,  // core <-> cache/HBM
  kMemBus,  // CPU <-> DIMMs
  kUPI,     // socket <-> socket (NUMA interconnect)
  kPcie,    // host <-> device, non-coherent
  kCxl,     // host <-> device, cache-coherent (CXL.mem/.cache)
  kNic,     // node <-> fabric, RDMA verbs only (no load/store)
  kSata,    // legacy storage
};

std::string_view LinkKindName(LinkKind kind);

struct LinkDesc {
  LinkKind kind = LinkKind::kPcie;
  SimDuration latency;      // one-way traversal latency
  double bw_gbps = 0;       // link bandwidth
  bool coherent = false;    // participates in a hardware coherence domain
  bool loadstore = false;   // CPU/accelerator can issue direct loads/stores
};

// Canonical link parameters per kind.
LinkDesc DefaultLink(LinkKind kind);

struct VertexTag {};
using VertexId = StrongId<VertexTag>;

// Result of routing from one vertex to another.
struct PathInfo {
  SimDuration latency;        // sum of link latencies
  double bw_gbps = 0;         // min bandwidth along the path
  bool coherent = false;      // every link coherent
  bool loadstore = false;     // every link supports direct load/store
  int hops = 0;

  bool reachable() const { return hops >= 0; }
};

// Undirected weighted graph with shortest-latency routing and a path cache.
// Vertices are either *transit* (CPUs root complexes, switches — traffic may
// route through them) or *endpoints* (memory devices — paths may start or end
// there but never pass through).
class Topology {
 public:
  VertexId AddVertex(std::string name, bool transit = true);

  // Adds a bidirectional link. Vertices must exist.
  LinkId Connect(VertexId a, VertexId b, LinkDesc desc);

  // Shortest-latency path; kNotFound if unreachable (disjoint coherence/
  // failure domains). Results are cached until the topology mutates.
  Result<PathInfo> Path(VertexId from, VertexId to) const;

  // Link fault injection: a failed link is excluded from routing.
  Status FailLink(LinkId link);
  Status RecoverLink(LinkId link);

  std::size_t num_vertices() const { return vertex_names_.size(); }
  std::size_t num_links() const { return links_.size(); }
  const std::string& vertex_name(VertexId v) const { return vertex_names_.at(v.value); }

 private:
  struct Link {
    VertexId a, b;
    LinkDesc desc;
    bool failed = false;
  };

  void InvalidateCache() const {
    std::unique_lock<std::shared_mutex> lock(cache_mu_);
    cache_.clear();
  }

  std::vector<std::string> vertex_names_;
  std::vector<bool> transit_;
  std::vector<std::vector<std::uint32_t>> adjacency_;  // vertex -> link indexes
  std::vector<Link> links_;

  // Guards cache_ only. Worker threads reach Path() concurrently through
  // RegionManager::Allocate (which no longer holds the manager-wide lock on
  // the data path), so the memo needs its own reader/writer lock; the graph
  // itself only mutates on the control thread with workers quiesced.
  mutable std::shared_mutex cache_mu_;
  mutable std::unordered_map<std::uint64_t, PathInfo> cache_;
};

}  // namespace memflow::simhw

#endif  // MEMFLOW_SIMHW_TOPOLOGY_H_
