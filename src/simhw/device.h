// Copyright (c) memflow authors. MIT license.
//
// Simulated memory devices. Each device kind carries a profile — bandwidth,
// latency, access granularity, attachment, coherence, persistence — derived
// from Table 1 of the paper (plus GDDR, which Figure 3 uses). A MemoryDevice
// is a capacity-managed arena over *real host memory*: extents store real
// bytes (so applications compute real results) while access *timing* is
// charged to the virtual clock by the cost model.

#ifndef MEMFLOW_SIMHW_DEVICE_H_
#define MEMFLOW_SIMHW_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "simhw/ids.h"

namespace memflow::simhw {

// The device kinds of Table 1, plus GDDR (GPU-attached memory of Figure 3).
enum class MemoryDeviceKind : std::uint8_t {
  kCache,      // on-chip SRAM (modeled as a tiny scratchpad)
  kHBM,        // on-package high-bandwidth memory
  kDRAM,       // socket-local DDR
  kGDDR,       // GPU-attached graphics memory
  kPMem,       // persistent memory DIMMs
  kCxlDram,    // CXL.mem expansion DRAM behind PCIe5/CXL
  kDisaggMem,  // far memory behind the NIC (RDMA)
  kSSD,        // NVMe flash
  kHDD,        // spinning disk
};

inline constexpr int kNumMemoryDeviceKinds = 9;

std::string_view MemoryDeviceKindName(MemoryDeviceKind kind);

// How the device is physically attached (Table 1, "Attached" column).
enum class Attachment : std::uint8_t {
  kOnChip,   // caches, HBM
  kMemBus,   // DRAM/PMem DIMMs on the CPU's memory bus
  kDevLocal, // GDDR soldered next to the GPU
  kPcie,     // PCIe (incl. CXL on PCIe5 PHY)
  kCxl,      // CXL.mem — cache-coherent PCIe5
  kNic,      // network-attached (RDMA)
  kSata,     // legacy storage
};

std::string_view AttachmentName(Attachment a);

// Device-intrinsic timing/behaviour profile. Path (link) costs are added on
// top by the Topology; the profile covers the media itself.
struct MemoryDeviceProfile {
  MemoryDeviceKind kind = MemoryDeviceKind::kDRAM;
  SimDuration read_latency;      // media latency per access
  SimDuration write_latency;
  double read_bw_gbps = 0;       // sustained sequential bandwidth, GB/s
  double write_bw_gbps = 0;
  std::uint64_t granularity = 64;  // bytes moved per access (Table 1 "Gran.")
  Attachment attachment = Attachment::kMemBus;
  bool byte_addressable = true;  // false for block devices (SSD/HDD)
  bool cache_coherent = true;    // participates in the CPU coherence domain
  bool sync_access = true;       // Table 1 "Sync": load/store vs. command queue
  bool persistent = false;       // Table 1 "Persist."
  // Whether the runtime may place regions here. On-chip caches are modeled
  // as devices (Table 1 row 1) but are not general allocation targets.
  bool allocatable = true;
  std::uint64_t default_capacity = 0;
};

// Canonical profile per kind, numbers chosen to reproduce Table 1's ordering
// (Cache > HBM > DRAM > PMem ~ CXL > Disagg > SSD > HDD for both bandwidth
// and latency) with magnitudes from public measurements.
const MemoryDeviceProfile& DefaultProfile(MemoryDeviceKind kind);

// Cumulative access counters, for utilization reports and the profiler.
struct DeviceStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  SimDuration busy_time;  // total media time charged
};

// An allocated range on a device. Extents are identified by (device, offset).
struct Extent {
  MemoryDeviceId device;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

// A simulated memory device instance.
//
// Allocation is first-fit over a free list with coalescing on free — a real
// allocator, because fragmentation behaviour matters for the pooling
// experiments. Backing host memory is materialized lazily per extent on first
// access, so capacity-scale experiments (fill a 256 GiB pool) do not need
// 256 GiB of host RAM.
class MemoryDevice {
 public:
  MemoryDevice(MemoryDeviceId id, NodeId node, std::string name,
               MemoryDeviceProfile profile, std::uint64_t capacity);

  MemoryDevice(const MemoryDevice&) = delete;
  MemoryDevice& operator=(const MemoryDevice&) = delete;

  MemoryDeviceId id() const { return id_; }
  NodeId node() const { return node_; }
  const std::string& name() const { return name_; }
  const MemoryDeviceProfile& profile() const { return profile_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  // High-water mark of used() since construction or the last ResetPeakUsed().
  // The capacity-bound oracle (testing/oracle.h) compares it against the
  // static per-device peak-bytes bound.
  std::uint64_t peak_used() const { return peak_used_; }
  void ResetPeakUsed() { peak_used_ = used_; }
  std::uint64_t free_bytes() const { return capacity_ - used_; }
  double utilization() const {
    return capacity_ == 0 ? 0.0 : static_cast<double>(used_) / static_cast<double>(capacity_);
  }

  // --- capacity management ---------------------------------------------------

  // Allocates `size` bytes (rounded up to the device granularity).
  Result<Extent> Allocate(std::uint64_t size);

  // Frees a previously allocated extent; coalesces adjacent free ranges.
  Status Free(const Extent& extent);

  // --- data + timing ---------------------------------------------------------

  // Real data access into the extent's backing store. `offset` is relative to
  // the extent. Returns the simulated media cost of the access. Sequential
  // accesses amortize latency over the run length; random accesses pay media
  // latency per `granularity` unit.
  Result<SimDuration> Read(const Extent& extent, std::uint64_t offset, void* dst,
                           std::uint64_t size);
  Result<SimDuration> Write(const Extent& extent, std::uint64_t offset, const void* src,
                            std::uint64_t size);

  // Timing-only accounting for modeled (traced) workloads that do not move
  // real bytes. `sequential` selects the amortized-bandwidth path.
  SimDuration ChargeRead(std::uint64_t bytes, bool sequential);
  SimDuration ChargeWrite(std::uint64_t bytes, bool sequential);

  // --- faults ----------------------------------------------------------------

  // A failed device rejects all accesses/allocations with kUnavailable and, if
  // non-persistent, loses its contents.
  void Fail();
  void Recover();
  bool failed() const { return failed_; }

  // Stats reads are only meaningful between batches (serial phases); the
  // counters themselves are updated under a lock because Read/Write on
  // *different extents* of one device may run concurrently during the
  // runtime's parallel-run phase.
  const DeviceStats& stats() const { return stats_; }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = DeviceStats{};
  }

 private:

  Status CheckAccess(const Extent& extent, std::uint64_t offset, std::uint64_t size) const;

  SimDuration AccessCost(std::uint64_t bytes, bool sequential, bool is_write) const;

  MemoryDeviceId id_;
  NodeId node_;
  std::string name_;
  MemoryDeviceProfile profile_;
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t peak_used_ = 0;
  bool failed_ = false;

  // Free list keyed by offset → size. Invariant: ranges are disjoint and
  // non-adjacent (adjacent ranges are coalesced).
  std::map<std::uint64_t, std::uint64_t> free_list_;
  // Live extents keyed by offset → (size, backing). Backing is materialized
  // lazily in fixed-size chunks, so allocating (or sparsely touching) a huge
  // extent does not consume host RAM proportional to its capacity.
  static constexpr std::uint64_t kBackingChunk = 256 * kKiB;
  struct LiveExtent {
    std::uint64_t size = 0;
    std::map<std::uint64_t, std::unique_ptr<std::byte[]>> chunks;  // by chunk index
  };
  std::byte* ChunkFor(LiveExtent& live, std::uint64_t chunk_index);
  void CopyOut(LiveExtent& live, std::uint64_t offset, void* dst, std::uint64_t size);
  void CopyIn(LiveExtent& live, std::uint64_t offset, const void* src, std::uint64_t size);
  std::map<std::uint64_t, LiveExtent> live_;

  void ChargeStats(bool is_write, std::uint64_t bytes, SimDuration cost);

  // Guards the device's structural state (free_list_, live_, used_, failed_
  // and the per-extent backing chunks): Allocate/Free/Fail/Recover take it
  // exclusive, Read/Write take it shared for the whole access. Needed because
  // the RegionManager data path no longer holds any manager-wide lock, so a
  // task body streaming bytes can be concurrent with another body allocating
  // on the same device. Concurrent Read/Write *on the same extent* are still
  // excluded by the runtime's ownership discipline, exactly as before.
  mutable std::shared_mutex state_mu_;

  // Guards stats_ only: Read/Write on *different extents* of one device may
  // run concurrently during the runtime's parallel-run phase.
  mutable std::mutex stats_mu_;
  DeviceStats stats_;
};

}  // namespace memflow::simhw

#endif  // MEMFLOW_SIMHW_DEVICE_H_
