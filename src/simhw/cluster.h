// Copyright (c) memflow authors. MIT license.
//
// A Cluster assembles nodes, compute devices, memory devices, and the
// interconnect topology into one simulated machine pool, and answers the
// question at the heart of the paper: *what does memory device M look like
// from compute device C?* (an AccessView). The runtime's placement decisions
// are made entirely in terms of AccessViews, never raw devices — that is how
// the same logical request resolves to DRAM for a CPU task and GDDR for a GPU
// task (Figure 3).

#ifndef MEMFLOW_SIMHW_CLUSTER_H_
#define MEMFLOW_SIMHW_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "simhw/compute.h"
#include "simhw/device.h"
#include "simhw/ids.h"
#include "simhw/topology.h"

namespace memflow::simhw {

// The effective properties of one (compute device, memory device) pair:
// media profile combined with the interconnect path between them.
struct AccessView {
  MemoryDeviceId device;
  ComputeDeviceId observer;

  SimDuration read_latency;   // media + path, per access
  SimDuration write_latency;
  double read_bw_gbps = 0;    // min(media, path)
  double write_bw_gbps = 0;
  std::uint64_t granularity = 64;

  bool addressable = false;   // direct load/store possible end-to-end
  bool coherent = false;      // hardware cache coherence end-to-end
  bool sync = false;          // synchronous interface sensible (addressable
                              //   and latency in the load/store regime)
  bool persistent = false;
  int hops = 0;

  // Simulated cost of an access burst through this view. Sequential bursts
  // pay latency once and stream at bandwidth; random bursts pay full latency
  // per granularity unit.
  SimDuration ReadCost(std::uint64_t bytes, bool sequential) const;
  SimDuration WriteCost(std::uint64_t bytes, bool sequential) const;
};

// A node is a failure domain (Challenge 8): a host crash fails every device
// on the node.
struct Node {
  NodeId id;
  std::string name;
  std::vector<ComputeDeviceId> compute;
  std::vector<MemoryDeviceId> memory;
};

class Cluster {
 public:
  Cluster() = default;
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- construction ----------------------------------------------------------

  NodeId AddNode(std::string name);

  // Adds a compute device on `node` with the default profile for `kind`.
  // The device gets its own topology vertex; wire it with Link().
  ComputeDeviceId AddCompute(NodeId node, ComputeDeviceKind kind, std::string name = "");

  // Adds a memory device. `capacity` == 0 uses the profile default.
  MemoryDeviceId AddMemory(NodeId node, MemoryDeviceKind kind, std::uint64_t capacity = 0,
                           std::string name = "");

  // Same, with a custom profile (e.g. a persistent CXL module).
  MemoryDeviceId AddMemoryWithProfile(NodeId node, const MemoryDeviceProfile& profile,
                                      std::uint64_t capacity, std::string name);

  // Adds an internal switch vertex (PCIe switch, CXL switch, TOR fabric).
  VertexId AddSwitch(std::string name);

  // Wires two endpoints with the default link for `kind`.
  LinkId Link(VertexId a, VertexId b, LinkKind kind);
  LinkId LinkWith(VertexId a, VertexId b, const LinkDesc& desc);

  VertexId VertexOf(ComputeDeviceId c) const;
  VertexId VertexOf(MemoryDeviceId m) const;

  // --- lookup ----------------------------------------------------------------

  MemoryDevice& memory(MemoryDeviceId id);
  const MemoryDevice& memory(MemoryDeviceId id) const;
  ComputeDevice& compute(ComputeDeviceId id);
  const ComputeDevice& compute(ComputeDeviceId id) const;
  const Node& node(NodeId id) const;

  std::size_t num_memory_devices() const { return memory_.size(); }
  std::size_t num_compute_devices() const { return compute_.size(); }
  std::size_t num_nodes() const { return nodes_.size(); }

  std::vector<MemoryDeviceId> AllMemoryDevices() const;
  std::vector<ComputeDeviceId> AllComputeDevices() const;

  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }

  // --- the core query ---------------------------------------------------------

  // What does `mem` look like from `from`? kNotFound if unreachable.
  Result<AccessView> View(ComputeDeviceId from, MemoryDeviceId mem) const;

  // --- faults -----------------------------------------------------------------

  // Crashes a node: every device on it fails (volatile memory loses data).
  Status CrashNode(NodeId id);
  Status RecoverNode(NodeId id);

  // --- reporting ---------------------------------------------------------------

  // Aggregate memory utilization across all (non-failed) devices, optionally
  // restricted to one kind.
  double MemoryUtilization() const;
  std::uint64_t TotalMemoryCapacity() const;
  std::uint64_t TotalMemoryUsed() const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<MemoryDevice>> memory_;
  std::vector<std::unique_ptr<ComputeDevice>> compute_;
  std::vector<VertexId> memory_vertex_;
  std::vector<VertexId> compute_vertex_;
  Topology topology_;
};

}  // namespace memflow::simhw

#endif  // MEMFLOW_SIMHW_CLUSTER_H_
