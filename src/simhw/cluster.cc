// Copyright (c) memflow authors. MIT license.

#include "simhw/cluster.h"

#include <algorithm>

namespace memflow::simhw {

namespace {

// Accesses slower than this are not sensibly synchronous: the paper's §2.2(3)
// threshold between "near memory: loads/stores" and "far memory: async".
constexpr SimDuration kSyncLatencyCeiling = SimDuration::Nanos(1000);

}  // namespace

SimDuration AccessView::ReadCost(std::uint64_t bytes, bool sequential) const {
  const std::uint64_t units = (bytes + granularity - 1) / granularity;
  const auto transfer = SimDuration::Nanos(
      static_cast<std::int64_t>(static_cast<double>(units * granularity) / read_bw_gbps));
  if (sequential) {
    return read_latency + transfer;
  }
  return SimDuration::Nanos(read_latency.ns * static_cast<std::int64_t>(units)) + transfer;
}

SimDuration AccessView::WriteCost(std::uint64_t bytes, bool sequential) const {
  const std::uint64_t units = (bytes + granularity - 1) / granularity;
  const auto transfer = SimDuration::Nanos(
      static_cast<std::int64_t>(static_cast<double>(units * granularity) / write_bw_gbps));
  if (sequential) {
    return write_latency + transfer;
  }
  return SimDuration::Nanos(write_latency.ns * static_cast<std::int64_t>(units)) + transfer;
}

NodeId Cluster::AddNode(std::string name) {
  const auto id = NodeId(static_cast<std::uint32_t>(nodes_.size()));
  nodes_.push_back(Node{id, std::move(name), {}, {}});
  return id;
}

ComputeDeviceId Cluster::AddCompute(NodeId node, ComputeDeviceKind kind, std::string name) {
  MEMFLOW_CHECK(node.value < nodes_.size());
  const auto id = ComputeDeviceId(static_cast<std::uint32_t>(compute_.size()));
  if (name.empty()) {
    name = std::string(ComputeDeviceKindName(kind)) + "#" + std::to_string(id.value);
  }
  compute_.push_back(
      std::make_unique<ComputeDevice>(id, node, name, DefaultComputeProfile(kind)));
  compute_vertex_.push_back(topology_.AddVertex(name));
  nodes_[node.value].compute.push_back(id);
  return id;
}

MemoryDeviceId Cluster::AddMemory(NodeId node, MemoryDeviceKind kind, std::uint64_t capacity,
                                  std::string name) {
  const MemoryDeviceProfile& profile = DefaultProfile(kind);
  if (capacity == 0) {
    capacity = profile.default_capacity;
  }
  if (name.empty()) {
    name = std::string(MemoryDeviceKindName(kind)) + "#" +
           std::to_string(memory_.size());
  }
  return AddMemoryWithProfile(node, profile, capacity, std::move(name));
}

MemoryDeviceId Cluster::AddMemoryWithProfile(NodeId node, const MemoryDeviceProfile& profile,
                                             std::uint64_t capacity, std::string name) {
  MEMFLOW_CHECK(node.value < nodes_.size());
  const auto id = MemoryDeviceId(static_cast<std::uint32_t>(memory_.size()));
  memory_.push_back(std::make_unique<MemoryDevice>(id, node, name, profile, capacity));
  memory_vertex_.push_back(topology_.AddVertex(name, /*transit=*/false));
  nodes_[node.value].memory.push_back(id);
  return id;
}

VertexId Cluster::AddSwitch(std::string name) { return topology_.AddVertex(std::move(name)); }

LinkId Cluster::Link(VertexId a, VertexId b, LinkKind kind) {
  return topology_.Connect(a, b, DefaultLink(kind));
}

LinkId Cluster::LinkWith(VertexId a, VertexId b, const LinkDesc& desc) {
  return topology_.Connect(a, b, desc);
}

VertexId Cluster::VertexOf(ComputeDeviceId c) const {
  MEMFLOW_CHECK(c.value < compute_vertex_.size());
  return compute_vertex_[c.value];
}

VertexId Cluster::VertexOf(MemoryDeviceId m) const {
  MEMFLOW_CHECK(m.value < memory_vertex_.size());
  return memory_vertex_[m.value];
}

MemoryDevice& Cluster::memory(MemoryDeviceId id) {
  MEMFLOW_CHECK(id.value < memory_.size());
  return *memory_[id.value];
}

const MemoryDevice& Cluster::memory(MemoryDeviceId id) const {
  MEMFLOW_CHECK(id.value < memory_.size());
  return *memory_[id.value];
}

ComputeDevice& Cluster::compute(ComputeDeviceId id) {
  MEMFLOW_CHECK(id.value < compute_.size());
  return *compute_[id.value];
}

const ComputeDevice& Cluster::compute(ComputeDeviceId id) const {
  MEMFLOW_CHECK(id.value < compute_.size());
  return *compute_[id.value];
}

const Node& Cluster::node(NodeId id) const {
  MEMFLOW_CHECK(id.value < nodes_.size());
  return nodes_[id.value];
}

std::vector<MemoryDeviceId> Cluster::AllMemoryDevices() const {
  std::vector<MemoryDeviceId> out;
  out.reserve(memory_.size());
  for (const auto& m : memory_) {
    out.push_back(m->id());
  }
  return out;
}

std::vector<ComputeDeviceId> Cluster::AllComputeDevices() const {
  std::vector<ComputeDeviceId> out;
  out.reserve(compute_.size());
  for (const auto& c : compute_) {
    out.push_back(c->id());
  }
  return out;
}

Result<AccessView> Cluster::View(ComputeDeviceId from, MemoryDeviceId mem) const {
  if (from.value >= compute_.size()) {
    return InvalidArgument("unknown compute device");
  }
  if (mem.value >= memory_.size()) {
    return InvalidArgument("unknown memory device");
  }
  const MemoryDevice& device = *memory_[mem.value];
  if (device.failed()) {
    return Unavailable(device.name() + " is failed");
  }
  MEMFLOW_ASSIGN_OR_RETURN(PathInfo path, topology_.Path(VertexOf(from), VertexOf(mem)));

  const MemoryDeviceProfile& p = device.profile();
  AccessView view;
  view.device = mem;
  view.observer = from;
  view.read_latency = p.read_latency + path.latency;
  view.write_latency = p.write_latency + path.latency;
  view.read_bw_gbps = std::min(p.read_bw_gbps, path.bw_gbps);
  view.write_bw_gbps = std::min(p.write_bw_gbps, path.bw_gbps);
  view.granularity = p.granularity;
  view.addressable = path.loadstore && p.byte_addressable;
  view.coherent = view.addressable && path.coherent && p.cache_coherent;
  view.sync = view.addressable && p.sync_access && view.read_latency <= kSyncLatencyCeiling;
  view.persistent = p.persistent;
  view.hops = path.hops;
  return view;
}

Status Cluster::CrashNode(NodeId id) {
  if (id.value >= nodes_.size()) {
    return NotFound("unknown node");
  }
  for (const auto c : nodes_[id.value].compute) {
    compute_[c.value]->Fail();
  }
  for (const auto m : nodes_[id.value].memory) {
    memory_[m.value]->Fail();
  }
  return OkStatus();
}

Status Cluster::RecoverNode(NodeId id) {
  if (id.value >= nodes_.size()) {
    return NotFound("unknown node");
  }
  for (const auto c : nodes_[id.value].compute) {
    compute_[c.value]->Recover();
  }
  for (const auto m : nodes_[id.value].memory) {
    memory_[m.value]->Recover();
  }
  return OkStatus();
}

double Cluster::MemoryUtilization() const {
  const std::uint64_t cap = TotalMemoryCapacity();
  return cap == 0 ? 0.0 : static_cast<double>(TotalMemoryUsed()) / static_cast<double>(cap);
}

std::uint64_t Cluster::TotalMemoryCapacity() const {
  std::uint64_t total = 0;
  for (const auto& m : memory_) {
    if (!m->failed()) {
      total += m->capacity();
    }
  }
  return total;
}

std::uint64_t Cluster::TotalMemoryUsed() const {
  std::uint64_t total = 0;
  for (const auto& m : memory_) {
    if (!m->failed()) {
      total += m->used();
    }
  }
  return total;
}

}  // namespace memflow::simhw
