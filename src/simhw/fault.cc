// Copyright (c) memflow authors. MIT license.

#include "simhw/fault.h"

#include <algorithm>

#include "common/log.h"

namespace memflow::simhw {

void FaultInjector::Add(FaultEvent event) {
  MEMFLOW_CHECK_MSG(next_ == 0, "cannot add events after injection started");
  pending_.push_back(event);
  sorted_ = false;
}

void FaultInjector::FailDeviceAt(SimTime at, MemoryDeviceId device) {
  Add({at, FaultEvent::Kind::kDeviceFail, device, {}, {}});
}

void FaultInjector::RecoverDeviceAt(SimTime at, MemoryDeviceId device) {
  Add({at, FaultEvent::Kind::kDeviceRecover, device, {}, {}});
}

void FaultInjector::CrashNodeAt(SimTime at, NodeId node) {
  Add({at, FaultEvent::Kind::kNodeCrash, {}, node, {}});
}

void FaultInjector::RecoverNodeAt(SimTime at, NodeId node) {
  Add({at, FaultEvent::Kind::kNodeRecover, {}, node, {}});
}

void FaultInjector::GenerateNodeCrashes(Rng& rng, std::span<const NodeId> nodes,
                                        SimDuration mtbf, SimDuration mttr, SimTime horizon) {
  for (const NodeId node : nodes) {
    SimTime t{};
    while (true) {
      const auto gap = SimDuration::Nanos(
          static_cast<std::int64_t>(rng.Exponential(static_cast<double>(mtbf.ns))));
      t = t + gap;
      if (t >= horizon) {
        break;
      }
      CrashNodeAt(t, node);
      t = t + mttr;
      if (t >= horizon) {
        break;
      }
      RecoverNodeAt(t, node);
    }
  }
}

std::vector<SimTime> FaultInjector::PendingTimes() {
  if (!sorted_) {
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
    sorted_ = true;
  }
  std::vector<SimTime> times;
  for (std::size_t i = next_; i < pending_.size(); ++i) {
    times.push_back(pending_[i].at);
  }
  return times;
}

std::size_t FaultInjector::ApplyDue(SimTime now) {
  if (!sorted_) {
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
    sorted_ = true;
  }
  std::size_t applied = 0;
  while (next_ < pending_.size() && pending_[next_].at <= now) {
    Apply(pending_[next_]);
    fired_.push_back(pending_[next_]);
    ++next_;
    ++applied;
  }
  return applied;
}

void FaultInjector::Apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultEvent::Kind::kDeviceFail:
      cluster_->memory(event.device).Fail();
      break;
    case FaultEvent::Kind::kDeviceRecover:
      cluster_->memory(event.device).Recover();
      break;
    case FaultEvent::Kind::kNodeCrash:
      MEMFLOW_LOG(kInfo) << "fault: node " << event.node.value << " crashed at t="
                         << event.at.ns << "ns";
      (void)cluster_->CrashNode(event.node);
      break;
    case FaultEvent::Kind::kNodeRecover:
      (void)cluster_->RecoverNode(event.node);
      break;
    case FaultEvent::Kind::kLinkFail:
      (void)cluster_->topology().FailLink(event.link);
      break;
    case FaultEvent::Kind::kLinkRecover:
      (void)cluster_->topology().RecoverLink(event.link);
      break;
  }
}

}  // namespace memflow::simhw
