// Copyright (c) memflow authors. MIT license.
//
// Strongly-typed integer ids. Each entity class gets its own id type so a
// ComputeDeviceId cannot be passed where a MemoryDeviceId is expected.

#ifndef MEMFLOW_SIMHW_IDS_H_
#define MEMFLOW_SIMHW_IDS_H_

#include <compare>
#include <cstdint>
#include <functional>

namespace memflow::simhw {

// CRTP-free strong id: Tag makes distinct instantiations incompatible.
template <typename Tag>
struct StrongId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  constexpr StrongId() = default;
  explicit constexpr StrongId(std::uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalid; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;
};

struct NodeTag {};
struct MemoryDeviceTag {};
struct ComputeDeviceTag {};
struct LinkTag {};

using NodeId = StrongId<NodeTag>;
using MemoryDeviceId = StrongId<MemoryDeviceTag>;
using ComputeDeviceId = StrongId<ComputeDeviceTag>;
using LinkId = StrongId<LinkTag>;

}  // namespace memflow::simhw

template <typename Tag>
struct std::hash<memflow::simhw::StrongId<Tag>> {
  std::size_t operator()(memflow::simhw::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

#endif  // MEMFLOW_SIMHW_IDS_H_
