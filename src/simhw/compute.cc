// Copyright (c) memflow authors. MIT license.

#include "simhw/compute.h"

#include "common/assert.h"

namespace memflow::simhw {

std::string_view ComputeDeviceKindName(ComputeDeviceKind kind) {
  switch (kind) {
    case ComputeDeviceKind::kCPU:
      return "CPU";
    case ComputeDeviceKind::kGPU:
      return "GPU";
    case ComputeDeviceKind::kTPU:
      return "TPU";
    case ComputeDeviceKind::kFPGA:
      return "FPGA";
    case ComputeDeviceKind::kDPU:
      return "DPU";
  }
  return "?";
}

const ComputeProfile& DefaultComputeProfile(ComputeDeviceKind kind) {
  // Relative throughputs; a CPU socket is the 1.0 baseline for both classes.
  static const ComputeProfile kProfiles[kNumComputeDeviceKinds] = {
      {ComputeDeviceKind::kCPU, 1.0, 1.0, 4},
      {ComputeDeviceKind::kGPU, 16.0, 0.25, 2},
      {ComputeDeviceKind::kTPU, 32.0, 0.05, 1},
      {ComputeDeviceKind::kFPGA, 8.0, 0.1, 1},
      {ComputeDeviceKind::kDPU, 2.0, 0.5, 2},
  };
  return kProfiles[static_cast<int>(kind)];
}

SimDuration ComputeDevice::ComputeTime(double work, double parallel_fraction) const {
  MEMFLOW_CHECK(work >= 0);
  MEMFLOW_CHECK(parallel_fraction >= 0.0 && parallel_fraction <= 1.0);
  const double par_ns = work * parallel_fraction / profile_.parallel_throughput;
  const double seq_ns = work * (1.0 - parallel_fraction) / profile_.scalar_throughput;
  return SimDuration::Nanos(static_cast<std::int64_t>(par_ns + seq_ns));
}

}  // namespace memflow::simhw
