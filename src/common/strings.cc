// Copyright (c) memflow authors. MIT license.

#include "common/strings.h"

#include <cstdio>

#include "common/units.h"

namespace memflow {

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string WithThousands(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out += ',';
    }
    out += *it;
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::vector<std::string_view> SplitString(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

bool HasPrefix(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string HumanBytes(std::uint64_t bytes) {
  if (bytes >= kGiB) {
    return FormatDouble(static_cast<double>(bytes) / static_cast<double>(kGiB), 2) + " GiB";
  }
  if (bytes >= kMiB) {
    return FormatDouble(static_cast<double>(bytes) / static_cast<double>(kMiB), 2) + " MiB";
  }
  if (bytes >= kKiB) {
    return FormatDouble(static_cast<double>(bytes) / static_cast<double>(kKiB), 2) + " KiB";
  }
  return std::to_string(bytes) + " B";
}

std::string HumanDuration(SimDuration d) {
  const double ns = static_cast<double>(d.ns);
  if (ns >= 1e9) {
    return FormatDouble(ns / 1e9, 3) + " s";
  }
  if (ns >= 1e6) {
    return FormatDouble(ns / 1e6, 3) + " ms";
  }
  if (ns >= 1e3) {
    return FormatDouble(ns / 1e3, 3) + " us";
  }
  return FormatDouble(ns, 0) + " ns";
}

}  // namespace memflow
