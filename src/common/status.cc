// Copyright (c) memflow authors. MIT license.

#include "common/status.h"

namespace memflow {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kPermissionDenied:
      return "permission_denied";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status OkStatus() { return Status(); }
Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
Status Unavailable(std::string msg) { return Status(StatusCode::kUnavailable, std::move(msg)); }
Status DataLoss(std::string msg) { return Status(StatusCode::kDataLoss, std::move(msg)); }
Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }

}  // namespace memflow
