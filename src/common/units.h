// Copyright (c) memflow authors. MIT license.
//
// Strongly-typed units used throughout the simulator and runtime: byte sizes
// and virtual time. Virtual time is the currency of the discrete-event engine:
// every memory access and compute step charges SimDuration to a VirtualClock.

#ifndef MEMFLOW_COMMON_UNITS_H_
#define MEMFLOW_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace memflow {

// --- Byte sizes -------------------------------------------------------------

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

constexpr std::uint64_t KiB(std::uint64_t n) { return n * kKiB; }
constexpr std::uint64_t MiB(std::uint64_t n) { return n * kMiB; }
constexpr std::uint64_t GiB(std::uint64_t n) { return n * kGiB; }

// "1.5 GiB", "640 KiB", "17 B" — for logs and bench tables.
std::string HumanBytes(std::uint64_t bytes);

// --- Virtual time -----------------------------------------------------------

// A point or span on the simulated timeline, in nanoseconds. A plain strong
// typedef (struct) so it cannot be silently mixed with wall-clock time.
struct SimDuration {
  std::int64_t ns = 0;

  constexpr SimDuration() = default;
  explicit constexpr SimDuration(std::int64_t nanos) : ns(nanos) {}

  static constexpr SimDuration Nanos(std::int64_t n) { return SimDuration(n); }
  static constexpr SimDuration Micros(std::int64_t u) { return SimDuration(u * 1000); }
  static constexpr SimDuration Millis(std::int64_t m) { return SimDuration(m * 1000000); }
  static constexpr SimDuration Seconds(std::int64_t s) { return SimDuration(s * 1000000000); }

  constexpr double ToMicros() const { return static_cast<double>(ns) / 1e3; }
  constexpr double ToMillis() const { return static_cast<double>(ns) / 1e6; }
  constexpr double ToSeconds() const { return static_cast<double>(ns) / 1e9; }

  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) {
    return SimDuration(a.ns + b.ns);
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) {
    return SimDuration(a.ns - b.ns);
  }
  friend constexpr SimDuration operator*(SimDuration a, std::int64_t k) {
    return SimDuration(a.ns * k);
  }
  SimDuration& operator+=(SimDuration o) {
    ns += o.ns;
    return *this;
  }
  friend constexpr auto operator<=>(SimDuration a, SimDuration b) = default;
};

// A timestamp on the virtual timeline.
struct SimTime {
  std::int64_t ns = 0;

  constexpr SimTime() = default;
  explicit constexpr SimTime(std::int64_t nanos) : ns(nanos) {}

  friend constexpr SimTime operator+(SimTime t, SimDuration d) { return SimTime(t.ns + d.ns); }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) {
    return SimDuration(a.ns - b.ns);
  }
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;
  friend constexpr bool operator==(SimTime a, SimTime b) = default;
};

// "12.3 us", "4.56 ms" — for logs and bench tables.
std::string HumanDuration(SimDuration d);

}  // namespace memflow

#endif  // MEMFLOW_COMMON_UNITS_H_
