// Copyright (c) memflow authors. MIT license.

#include "common/worker_pool.h"

#include <algorithm>

#include "common/assert.h"

namespace memflow {

WorkerPool::WorkerPool(int threads) {
  MEMFLOW_CHECK(threads >= 0);
  threads_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

int WorkerPool::ResolveThreads(int requested) {
  if (requested > 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

bool WorkerPool::RunOne(std::unique_lock<std::mutex>& lock) {
  if (next_ >= queue_.size()) {
    return false;
  }
  std::function<void()> task = std::move(queue_[next_++]);
  in_flight_++;
  lock.unlock();
  task();
  lock.lock();
  in_flight_--;
  return true;
}

void WorkerPool::WorkerMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (RunOne(lock)) {
      if (next_ >= queue_.size() && in_flight_ == 0) {
        done_cv_.notify_one();
      }
      continue;
    }
    if (shutdown_) {
      return;
    }
    work_cv_.wait(lock);
  }
}

void WorkerPool::RunBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  MEMFLOW_CHECK(next_ == queue_.size() && in_flight_ == 0);  // not reentrant
  queue_ = std::move(tasks);
  next_ = 0;
  work_cv_.notify_all();
  // The caller helps drain the queue, then waits for stragglers.
  while (RunOne(lock)) {
  }
  done_cv_.wait(lock, [this] { return next_ >= queue_.size() && in_flight_ == 0; });
  queue_.clear();
  next_ = 0;
}

}  // namespace memflow
