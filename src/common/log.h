// Copyright (c) memflow authors. MIT license.
//
// Minimal leveled logging. The runtime logs placement decisions, migrations,
// and fault events at kDebug/kInfo; tests raise the threshold to kWarn to keep
// output quiet. Not thread-buffered: messages are formatted into one string and
// written with a single fputs, so concurrent logs do not interleave mid-line.

#ifndef MEMFLOW_COMMON_LOG_H_
#define MEMFLOW_COMMON_LOG_H_

#include <sstream>
#include <string_view>

namespace memflow {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Structured one-line key=value log context:
//
//   MEMFLOW_LOG(kInfo) << "migration" << Kv("region", id) << Kv("bytes", n);
//
// renders "migration region=17 bytes=1048576". Runtime events (placement,
// migration, fault) log the same label keys the metrics registry uses
// (`device`, `region_class`, `job`, ...), so log lines and metric series
// correlate directly.
template <typename T>
struct KvPair {
  std::string_view key;
  const T& value;
};

template <typename T>
KvPair<T> Kv(std::string_view key, const T& value) {
  return {key, value};
}

template <typename T>
std::ostream& operator<<(std::ostream& os, const KvPair<T>& kv) {
  return os << ' ' << kv.key << '=' << kv.value;
}

// Global threshold; messages below it are dropped. Default kWarn.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace detail {

void LogWrite(LogLevel level, std::string_view file, int line, std::string_view msg);

// Stream collector used by the MEMFLOW_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogWrite(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail

#define MEMFLOW_LOG(level)                                            \
  if (static_cast<int>(::memflow::LogLevel::level) <                  \
      static_cast<int>(::memflow::GetLogLevel())) {                   \
  } else                                                              \
    ::memflow::detail::LogMessage(::memflow::LogLevel::level,         \
                                  __FILE__, __LINE__)                 \
        .stream()

#define MEMFLOW_VLOG() MEMFLOW_LOG(kDebug)

}  // namespace memflow

#endif  // MEMFLOW_COMMON_LOG_H_
