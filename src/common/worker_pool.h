// Copyright (c) memflow authors. MIT license.
//
// A minimal fixed-size host thread pool for the runtime's parallel-run phase.
// The pool exists for the lifetime of its owner (threads are created once,
// not per batch) and exposes exactly one operation: run a batch of closures
// to completion. The caller thread participates in draining the queue, so a
// pool of N threads applies N+1 workers to each batch and a batch of one
// task degenerates to an inline call.

#ifndef MEMFLOW_COMMON_WORKER_POOL_H_
#define MEMFLOW_COMMON_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace memflow {

class WorkerPool {
 public:
  // `threads` background threads (0 = caller-only pool; RunBatch degrades to
  // a serial loop with no synchronization overhead beyond one mutex pass).
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return static_cast<int>(threads_.size()); }

  // Runs every closure in `tasks`, blocking until all have finished. Closures
  // may run on any worker (or the caller) in any order; they must synchronize
  // access to shared state themselves. Not reentrant: closures must not call
  // RunBatch on the same pool.
  void RunBatch(std::vector<std::function<void()>> tasks);

  // Picks a worker count: `requested` if positive, hardware_concurrency if 0.
  static int ResolveThreads(int requested);

 private:
  void WorkerMain();
  // Pops and runs one queued task. Returns false if the queue was empty.
  bool RunOne(std::unique_lock<std::mutex>& lock);

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task queued / shutdown
  std::condition_variable done_cv_;   // signals the caller: batch finished
  std::vector<std::function<void()>> queue_;
  std::size_t next_ = 0;       // queue_[next_..) are not yet claimed
  std::size_t in_flight_ = 0;  // claimed but not finished
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace memflow

#endif  // MEMFLOW_COMMON_WORKER_POOL_H_
