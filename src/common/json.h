// Copyright (c) memflow authors. MIT license.
//
// Shared JSON emission helpers. Every exporter that hand-writes JSON (Chrome
// traces, metric snapshots, bench results) routes its strings through
// JsonEscape so a task or device name containing quotes, backslashes, or
// control characters can never produce an invalid document.

#ifndef MEMFLOW_COMMON_JSON_H_
#define MEMFLOW_COMMON_JSON_H_

#include <string>
#include <string_view>

namespace memflow {

// Escapes `s` for embedding inside a JSON string literal (quotes not added):
// `"` -> `\"`, `\` -> `\\`, common control characters to their short escapes,
// and any other byte < 0x20 to `\u00XX`. Non-ASCII bytes pass through
// unchanged (JSON strings are UTF-8).
std::string JsonEscape(std::string_view s);

// `"` + JsonEscape(s) + `"`.
std::string JsonQuote(std::string_view s);

// Renders a double as a JSON number. Non-finite values (which JSON cannot
// represent) are clamped to 0 so a stray NaN never invalidates a document.
std::string JsonNumber(double v);

}  // namespace memflow

#endif  // MEMFLOW_COMMON_JSON_H_
