// Copyright (c) memflow authors. MIT license.
//
// Small string helpers shared by logs, bench tables, and examples.

#ifndef MEMFLOW_COMMON_STRINGS_H_
#define MEMFLOW_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace memflow {

// printf-style double with fixed decimals, e.g. FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double v, int decimals);

// "12,345,678" — thousands separators for counters in reports.
std::string WithThousands(std::uint64_t v);

// Split on a single character; keeps empty fields.
std::vector<std::string_view> SplitString(std::string_view s, char sep);

// True if `s` starts with `prefix` (C++20 has starts_with; kept for symmetry
// with the codebase's string_view-first style).
bool HasPrefix(std::string_view s, std::string_view prefix);

}  // namespace memflow

#endif  // MEMFLOW_COMMON_STRINGS_H_
