// Copyright (c) memflow authors. MIT license.
//
// Error handling for the memflow runtime. The runtime never throws on the hot
// path; fallible operations return Status or Result<T>. This mirrors the error
// model of comparable systems runtimes (absl::Status / zx_status_t): a small
// closed set of codes plus a human-readable message.

#ifndef MEMFLOW_COMMON_STATUS_H_
#define MEMFLOW_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/assert.h"

namespace memflow {

// Closed set of error categories used across all memflow subsystems.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller passed something malformed
  kNotFound,           // id/name does not resolve
  kAlreadyExists,      // duplicate registration
  kFailedPrecondition, // object in the wrong state (e.g. region not owned)
  kResourceExhausted,  // out of capacity on every candidate device
  kPermissionDenied,   // confidentiality / ownership violation
  kUnavailable,        // device or node faulted; retry may succeed
  kDataLoss,           // non-recoverable loss (crash without persistence/FT)
  kUnimplemented,
  kInternal,           // invariant violation inside the runtime
};

// Returns a stable lowercase name, e.g. "resource_exhausted".
std::string_view StatusCodeName(StatusCode code);

// Value-type status: code + message. Cheap to copy when OK.
class [[nodiscard]] Status {
 public:
  // OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

Status OkStatus();
Status InvalidArgument(std::string msg);
Status NotFound(std::string msg);
Status AlreadyExists(std::string msg);
Status FailedPrecondition(std::string msg);
Status ResourceExhausted(std::string msg);
Status PermissionDenied(std::string msg);
Status Unavailable(std::string msg);
Status DataLoss(std::string msg);
Status Unimplemented(std::string msg);
Status Internal(std::string msg);

// Result<T>: either a value or a non-OK Status. Accessing value() on an error
// aborts (it is a programming error, like dereferencing an empty optional).
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from value and from error status, so functions can
  // `return value;` / `return NotFound(...)`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    MEMFLOW_CHECK_MSG(!std::get<Status>(repr_).ok(),
                      "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk{};
    return ok() ? kOk : std::get<Status>(repr_);
  }

  T& value() & {
    MEMFLOW_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(repr_);
  }
  const T& value() const& {
    MEMFLOW_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(repr_);
  }
  T&& value() && {
    MEMFLOW_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // value_or for recoverable paths.
  T value_or(T fallback) const& { return ok() ? std::get<T>(repr_) : std::move(fallback); }

 private:
  std::variant<T, Status> repr_;
};

// Propagate errors: `MEMFLOW_RETURN_IF_ERROR(DoThing());`
#define MEMFLOW_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::memflow::Status _mf_status = (expr);     \
    if (!_mf_status.ok()) {                    \
      return _mf_status;                       \
    }                                          \
  } while (false)

// Assign-or-propagate: `MEMFLOW_ASSIGN_OR_RETURN(auto v, Compute());`
#define MEMFLOW_ASSIGN_OR_RETURN(decl, expr)             \
  auto MEMFLOW_CONCAT_(_mf_result_, __LINE__) = (expr);  \
  if (!MEMFLOW_CONCAT_(_mf_result_, __LINE__).ok()) {    \
    return MEMFLOW_CONCAT_(_mf_result_, __LINE__).status(); \
  }                                                      \
  decl = std::move(MEMFLOW_CONCAT_(_mf_result_, __LINE__)).value()

#define MEMFLOW_CONCAT_INNER_(a, b) a##b
#define MEMFLOW_CONCAT_(a, b) MEMFLOW_CONCAT_INNER_(a, b)

}  // namespace memflow

#endif  // MEMFLOW_COMMON_STATUS_H_
