// Copyright (c) memflow authors. MIT license.

#include "common/table.h"

#include <algorithm>

#include "common/assert.h"

namespace memflow {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  MEMFLOW_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  MEMFLOW_CHECK_MSG(cells.size() == header_.size(), "row width != header width");
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::AddRule() { pending_rule_ = true; }

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += "| ";
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string rule;
  for (const std::size_t w : widths) {
    rule += "+";
    rule.append(w + 2, '-');
  }
  rule += "+\n";

  std::string out = rule + render_line(header_) + rule;
  for (const Row& row : rows_) {
    if (row.rule_before) {
      out += rule;
    }
    out += render_line(row.cells);
  }
  out += rule;
  return out;
}

}  // namespace memflow
