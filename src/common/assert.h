// Copyright (c) memflow authors. MIT license.
//
// Internal invariant checking. MEMFLOW_CHECK is always on (it guards runtime
// invariants whose violation means memory corruption or a programming error in
// the runtime itself); MEMFLOW_DCHECK compiles out in NDEBUG builds.

#ifndef MEMFLOW_COMMON_ASSERT_H_
#define MEMFLOW_COMMON_ASSERT_H_

#include <cstdio>
#include <cstdlib>

namespace memflow::detail {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "memflow: CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace memflow::detail

#define MEMFLOW_CHECK(expr)                                            \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::memflow::detail::CheckFailed(#expr, __FILE__, __LINE__, "");   \
    }                                                                  \
  } while (false)

#define MEMFLOW_CHECK_MSG(expr, msg)                                   \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::memflow::detail::CheckFailed(#expr, __FILE__, __LINE__, msg);  \
    }                                                                  \
  } while (false)

#ifdef NDEBUG
#define MEMFLOW_DCHECK(expr) \
  do {                       \
  } while (false)
#else
#define MEMFLOW_DCHECK(expr) MEMFLOW_CHECK(expr)
#endif

#endif  // MEMFLOW_COMMON_ASSERT_H_
