// Copyright (c) memflow authors. MIT license.
//
// ASCII table renderer used by the benchmark harness to print the paper's
// tables and figure data series in a uniform format.

#ifndef MEMFLOW_COMMON_TABLE_H_
#define MEMFLOW_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace memflow {

// Column-aligned ASCII table. Usage:
//   TextTable t({"Name", "Bw.", "Lat."});
//   t.AddRow({"DRAM", "+", "+"});
//   std::cout << t.Render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Inserts a horizontal rule before the next added row.
  void AddRule();

  // Renders with a box-drawing-free layout safe for any terminal/log.
  std::string Render() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace memflow

#endif  // MEMFLOW_COMMON_TABLE_H_
