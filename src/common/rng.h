// Copyright (c) memflow authors. MIT license.
//
// Deterministic, seedable random number generation. Everything random in
// memflow (workload generators, fault schedules, sampling) goes through Rng so
// that simulations and tests are exactly reproducible from a seed.
//
// Core generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64.

#ifndef MEMFLOW_COMMON_RNG_H_
#define MEMFLOW_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace memflow {

// SplitMix64: used for seeding and for cheap stateless mixing.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** PRNG. Not cryptographic; fast and high quality for simulation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9d2c5680f1aa42ddULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  // rejection to avoid modulo bias.
  std::uint64_t Below(std::uint64_t bound) {
    MEMFLOW_DCHECK(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    MEMFLOW_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli trial.
  bool Chance(double p) { return NextDouble() < p; }

  // Exponential with the given mean (for inter-arrival times).
  double Exponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

// Zipf-distributed values in [0, n): rank 0 is the hottest item. Used by the
// tiering and placement benchmarks to model skewed access streams. Uses the
// classic inverse-CDF table (O(n) setup, O(log n) sample).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta) : n_(n) {
    MEMFLOW_CHECK(n > 0);
    cdf_.reserve(n);
    double sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_.push_back(sum);
    }
    for (auto& c : cdf_) {
      c /= sum;
    }
  }

  std::uint64_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    // Binary search for the first cdf entry >= u.
    std::uint64_t lo = 0;
    std::uint64_t hi = n_ - 1;
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace memflow

#endif  // MEMFLOW_COMMON_RNG_H_
