// Copyright (c) memflow authors. MIT license.
//
// MonotonicArena: bump-pointer allocation for control-plane scratch whose
// lifetime is one dispatch-loop iteration (DESIGN.md §14). The dispatch hot
// path used to pay a malloc/free pair per staged body for chain lists, commit
// orders, and similar short-lived buffers; the arena turns those into a
// pointer bump, and Reset() recycles every block in O(#blocks) without
// returning memory to the OS — steady state allocates nothing.
//
// Epochs: every Reset() bumps an epoch counter. Consumers that cache
// arena-backed structures (e.g. the cost-model memo) key on the epoch so a
// stale pointer can never be dereferenced: a mismatched epoch *is* the
// invalidation signal. Under ASan, Reset() poisons the recycled payload so a
// use-after-reset faults instead of silently reading recycled bytes.
//
// Not thread-safe: an arena belongs to one thread (the control thread). Task
// bodies must not touch it — they run during the parallel phase while the
// control thread owns the arena.

#ifndef MEMFLOW_COMMON_ARENA_H_
#define MEMFLOW_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/assert.h"

#if defined(__SANITIZE_ADDRESS__)
#define MEMFLOW_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MEMFLOW_ARENA_ASAN 1
#endif
#endif

#ifdef MEMFLOW_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace memflow {

class MonotonicArena {
 public:
  // First block size; subsequent blocks double up to kMaxBlockBytes.
  static constexpr std::size_t kDefaultBlockBytes = 16 * 1024;
  static constexpr std::size_t kMaxBlockBytes = 1024 * 1024;

  explicit MonotonicArena(std::size_t first_block_bytes = kDefaultBlockBytes)
      : next_block_bytes_(first_block_bytes) {
    MEMFLOW_CHECK(first_block_bytes > 0);
  }

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  // Raw allocation, `align` must be a power of two. Never fails (grows by
  // appending blocks); memory is uninitialized.
  void* Allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    MEMFLOW_CHECK(align != 0 && (align & (align - 1)) == 0);
    if (bytes == 0) {
      bytes = 1;  // distinct non-null pointers, mirrors operator new
    }
    std::uintptr_t p = (cursor_ + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    if (p + bytes > limit_) {
      Grow(bytes + align);
      p = (cursor_ + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    }
    cursor_ = p + bytes;
    bytes_used_ += bytes;
#ifdef MEMFLOW_ARENA_ASAN
    __asan_unpoison_memory_region(reinterpret_cast<void*>(p), bytes);
#endif
    return reinterpret_cast<void*>(p);
  }

  // Typed array of default-initialized Ts. T must be trivially destructible:
  // Reset() never runs destructors.
  template <typename T>
  T* AllocateArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without destructors");
    T* out = static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) {
      ::new (static_cast<void*>(out + i)) T();
    }
    return out;
  }

  // Single object, forwarding constructor arguments.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without destructors");
    return ::new (Allocate(sizeof(T), alignof(T))) T(static_cast<Args&&>(args)...);
  }

  // Recycles every block and bumps the epoch. O(#blocks); frees nothing, so
  // after warmup a dispatch iteration allocates zero bytes from the OS.
  void Reset() {
    ++epoch_;
    bytes_used_ = 0;
    block_index_ = 0;
    if (blocks_.empty()) {
      cursor_ = limit_ = 0;
      return;
    }
#ifdef MEMFLOW_ARENA_ASAN
    for (const Block& b : blocks_) {
      __asan_poison_memory_region(b.data.get(), b.size);
    }
#endif
    cursor_ = reinterpret_cast<std::uintptr_t>(blocks_.front().data.get());
    limit_ = cursor_ + blocks_.front().size;
  }

  // Monotonic count of Reset() calls. Anything caching arena-backed data
  // must revalidate against this.
  std::uint64_t epoch() const { return epoch_; }

  // Bytes handed out since the last Reset (excludes alignment padding).
  std::size_t bytes_used() const { return bytes_used_; }
  // Total bytes held across all blocks (never shrinks).
  std::size_t bytes_capacity() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) {
      total += b.size;
    }
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void Grow(std::size_t min_bytes) {
    // Reuse an already-owned later block when it fits (post-Reset path).
    while (block_index_ + 1 < blocks_.size()) {
      Block& b = blocks_[++block_index_];
      if (b.size >= min_bytes) {
        cursor_ = reinterpret_cast<std::uintptr_t>(b.data.get());
        limit_ = cursor_ + b.size;
        return;
      }
    }
    std::size_t size = next_block_bytes_;
    while (size < min_bytes) {
      size *= 2;
    }
    next_block_bytes_ = size < kMaxBlockBytes ? size * 2 : kMaxBlockBytes;
    Block b{std::make_unique<std::byte[]>(size), size};
    cursor_ = reinterpret_cast<std::uintptr_t>(b.data.get());
    limit_ = cursor_ + size;
    blocks_.push_back(std::move(b));
    block_index_ = blocks_.size() - 1;
  }

  std::vector<Block> blocks_;
  std::size_t block_index_ = 0;     // block the cursor currently points into
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t next_block_bytes_;
  std::size_t bytes_used_ = 0;
  std::uint64_t epoch_ = 0;
};

// Minimal vector-like view over arena storage for trivially-copyable Ts.
// push_back grows by arena re-allocation + memcpy; never frees. Valid only
// until the owning arena resets — hold one for a single dispatch iteration.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>);

 public:
  explicit ArenaVector(MonotonicArena& arena, std::size_t reserve = 0) : arena_(&arena) {
    if (reserve > 0) {
      data_ = static_cast<T*>(arena_->Allocate(reserve * sizeof(T), alignof(T)));
      capacity_ = reserve;
    }
  }

  void push_back(const T& v) {
    if (size_ == capacity_) {
      const std::size_t new_cap = capacity_ == 0 ? 8 : capacity_ * 2;
      T* grown = static_cast<T*>(arena_->Allocate(new_cap * sizeof(T), alignof(T)));
      for (std::size_t i = 0; i < size_; ++i) {
        grown[i] = data_[i];
      }
      data_ = grown;
      capacity_ = new_cap;
    }
    data_[size_++] = v;
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  MonotonicArena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace memflow

#endif  // MEMFLOW_COMMON_ARENA_H_
