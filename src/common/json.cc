// Copyright (c) memflow authors. MIT license.

#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace memflow {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string JsonQuote(std::string_view s) { return '"' + JsonEscape(s) + '"'; }

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  // Integral values print without a fraction so counters stay integers.
  if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 9e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace memflow
