// Copyright (c) memflow authors. MIT license.
//
// Non-cryptographic hashing used by the mini-DBMS operators, region id maps,
// and the feature-hash "face recognition" of the hospital example.

#ifndef MEMFLOW_COMMON_HASH_H_
#define MEMFLOW_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace memflow {

// 64-bit FNV-1a over raw bytes.
constexpr std::uint64_t Fnv1a64(const char* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<std::uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t Fnv1a64(std::string_view s) { return Fnv1a64(s.data(), s.size()); }

// Strong 64-bit integer mixer (Murmur3 finalizer). Good enough to use an
// integer key directly in open-addressing tables.
constexpr std::uint64_t MixU64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Boost-style combine for composite keys.
constexpr std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t v) {
  return seed ^ (MixU64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace memflow

#endif  // MEMFLOW_COMMON_HASH_H_
