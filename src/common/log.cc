// Copyright (c) memflow authors. MIT license.

#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <string>

namespace memflow {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

// Strip directories: "src/rts/scheduler.cc" -> "scheduler.cc".
std::string_view Basename(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {

void LogWrite(LogLevel level, std::string_view file, int line, std::string_view msg) {
  if (static_cast<int>(level) < g_level.load()) {
    return;
  }
  std::string out;
  out.reserve(msg.size() + 48);
  out += '[';
  out += LevelTag(level);
  out += ' ';
  out += Basename(file);
  out += ':';
  out += std::to_string(line);
  out += "] ";
  out += msg;
  out += '\n';
  std::fputs(out.c_str(), stderr);
}

}  // namespace detail

}  // namespace memflow
