// Copyright (c) memflow authors. MIT license.
//
// An AIFM-style swizzle cache (paper §3, Challenges 1–3: "remotable pointers
// that either point to objects in local or in remote memory (pointer
// swizzling)"). The cache pins byte ranges of (possibly far) regions into a
// bounded local buffer; a pinned RemotePtr<T> is *swizzled* to a raw host
// pointer and dereferences at memory speed, while unpinned pointers stay in
// their packed remote form. Eviction is LRU over unpinned entries, with
// dirty write-back through the region's async interface.

#ifndef MEMFLOW_REGION_SWIZZLE_CACHE_H_
#define MEMFLOW_REGION_SWIZZLE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "region/region_manager.h"
#include "region/remote_ptr.h"

namespace memflow::region {

struct SwizzleCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t resident_bytes = 0;
};

class SwizzleCache {
 public:
  // `who` must own (or share) every region accessed through the cache.
  SwizzleCache(RegionManager& regions, simhw::ComputeDeviceId observer, Principal who,
               std::uint64_t capacity_bytes);

  SwizzleCache(const SwizzleCache&) = delete;
  SwizzleCache& operator=(const SwizzleCache&) = delete;

  ~SwizzleCache();

  // Pins [offset, offset+len) of `region` locally. Returns the local address
  // and adds the (simulated) fetch cost to total_cost(); a hit costs nothing.
  Result<void*> PinRange(RegionId region, std::uint64_t offset, std::uint64_t len);

  // Releases one pin. `dirty` marks the local copy for write-back (performed
  // at eviction or Flush).
  Status UnpinRange(RegionId region, std::uint64_t offset, std::uint64_t len, bool dirty);

  // Typed convenience over RemotePtr: swizzles the pointer on success.
  template <typename T>
  Result<SimDuration> Pin(RemotePtr<T>& ptr) {
    const RegionId region = ptr.region();
    const std::uint64_t offset = ptr.byte_offset();
    const SimDuration before = total_cost_;
    MEMFLOW_ASSIGN_OR_RETURN(void* local, PinRange(region, offset, sizeof(T)));
    ptr.Touch();
    ptr.Swizzle(static_cast<T*>(local));
    return total_cost_ - before;
  }

  // Unswizzles the pointer back to its remote form.
  template <typename T>
  Status Unpin(RemotePtr<T>& ptr, RegionId region, std::uint64_t element_offset,
               bool dirty) {
    MEMFLOW_RETURN_IF_ERROR(
        UnpinRange(region, element_offset * sizeof(T), sizeof(T), dirty));
    ptr.Unswizzle(region, element_offset);
    return OkStatus();
  }

  // Writes back every dirty entry (keeps them resident).
  Status Flush();

  const SwizzleCacheStats& stats() const { return stats_; }
  SimDuration total_cost() const { return total_cost_; }
  std::uint64_t capacity() const { return capacity_; }

 private:
  struct Key {
    std::uint32_t region;
    std::uint64_t offset;
    std::uint64_t len;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  struct Entry {
    std::vector<std::byte> buffer;
    int pins = 0;
    bool dirty = false;
    std::list<Key>::iterator lru;  // valid when pins == 0
  };

  Status WriteBack(const Key& key, Entry& entry);
  Status EvictUntilFits(std::uint64_t incoming);

  RegionManager* regions_;
  simhw::ComputeDeviceId observer_;
  Principal who_;
  std::uint64_t capacity_;

  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = most recent; only unpinned entries
  SwizzleCacheStats stats_;
  SimDuration total_cost_;
  // Stride detector over the pin stream. Cache hits never reach DoRead (the
  // cache serves them locally), so PinRange reports them to the access
  // profiler itself — otherwise reuse telemetry would only see misses and
  // under-count exactly the locality a cache exists to exploit.
  telemetry::PatternTracker pin_pattern_;

  telemetry::Counter* hits_;
  telemetry::Counter* misses_;
  telemetry::Counter* evictions_;
  telemetry::Counter* writebacks_;
  telemetry::Gauge* resident_bytes_;
};

}  // namespace memflow::region

#endif  // MEMFLOW_REGION_SWIZZLE_CACHE_H_
