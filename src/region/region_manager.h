// Copyright (c) memflow authors. MIT license.
//
// The RegionManager is the memory half of the paper's runtime system: it
// resolves declarative allocation requests to physical devices (observer-
// relative, Figure 3), tracks ownership and lifetime (§2.2(2)), performs
// ownership transfers and — only when necessary — physical migration
// (Figure 4), enforces confidentiality (at-rest scrambling + job isolation),
// and maintains the hotness statistics used by the tiering daemon.
//
// Thread-safety (DESIGN.md §8): the manager is guarded by one reader/writer
// lock. The data path (DoRead/DoWrite/Open*/Info/CheckOwnership) takes the
// lock shared — many task bodies stream bytes concurrently during the
// runtime's parallel-run phase — and bumps its counters with atomics.
// Structural mutations (allocate/free/transfer/share/migrate/fault marking)
// take it exclusive, so they serialize against each other *and* against every
// in-flight access.

#ifndef MEMFLOW_REGION_REGION_MANAGER_H_
#define MEMFLOW_REGION_REGION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "region/accessor.h"
#include "region/properties.h"
#include "region/region.h"
#include "simhw/clock.h"
#include "simhw/cluster.h"
#include "telemetry/metrics.h"
#include "telemetry/selfprof.h"
#include "telemetry/trace.h"

namespace memflow::region {

// Placement scoring knobs. `pressure_weight` trades expected access cost
// against device fullness so one hot device does not absorb every region.
struct PlacementConfig {
  double pressure_weight = 0.25;
  // If true, a request no device can satisfy is retried with the latency
  // class relaxed one step (spill-to-slower-tier), mirroring what a tiering
  // OS would do; the region is flagged for later promotion.
  bool allow_latency_relax = false;
};

// Region classes, by the Table 2 property bundles. Used only for accounting
// (the Table 3 usage matrix); placement never branches on the class.
enum class RegionClass : int {
  kPrivateScratch = 0,  // sync, noncoherent
  kGlobalState = 1,     // sync, coherent
  kGlobalScratch = 2,   // async, coherent
  kOther = 3,
};
inline constexpr int kNumRegionClasses = 4;

std::string_view RegionClassName(RegionClass c);
RegionClass ClassifyProperties(const Properties& props);

// Why one memory device did (not) receive a region (DESIGN.md §11). Verdicts
// mirror the skip reasons inside the placement ranking loop.
enum class DeviceVerdict : std::uint8_t {
  kChosen,                // the region lives here
  kRankedLoser,           // satisfies the request but scored worse
  kDeviceFailed,          // device is down
  kNotAllocatable,        // device class does not accept allocations
  kInsufficientCapacity,  // not enough free bytes
  kNoPath,                // unreachable from the observer
  kPropertyMismatch,      // observer-relative view violates a property
};

std::string_view DeviceVerdictName(DeviceVerdict v);

struct RegionCandidate {
  simhw::MemoryDeviceId device;
  DeviceVerdict verdict = DeviceVerdict::kRankedLoser;
  double expected_cost_ns = 0;  // ExpectedUseCost through the view (scored only)
  double utilization = 0;       // device fullness folded into the score
  double score = 0;             // cost * (1 + pressure_weight * utilization)
  std::string detail;           // loser/rejection reason
};

// Ranked breakdown of a region placement decision: chosen device first, then
// satisfying losers by ascending score, then rejects with their reasons.
struct RegionPlacementExplain {
  RegionId region;
  std::uint64_t size = 0;
  Properties requested;              // as declared by the application
  LatencyClass effective_latency = LatencyClass::kAny;  // after any relax
  bool latency_relaxed = false;
  bool pinned = false;               // AllocateOn: placement was never ranked
  simhw::ComputeDeviceId observer;   // invalid when pinned
  simhw::MemoryDeviceId chosen;
  std::vector<RegionCandidate> candidates;
};

// Counters bumped on the shared-lock data path are atomics; everything else
// is mutated only under the exclusive lock. Reads are only meaningful from
// serial phases (tests, profiler, benches), never mid-batch.
struct ManagerStats {
  std::uint64_t allocations = 0;
  std::uint64_t failed_allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t transfers = 0;
  std::uint64_t zero_copy_transfers = 0;
  std::uint64_t migrations = 0;
  std::uint64_t bytes_migrated = 0;
  std::atomic<std::uint64_t> confidentiality_denials{0};
  // Traffic per region class (Table 3 usage matrix).
  std::atomic<std::uint64_t> bytes_read_by_class[kNumRegionClasses] = {};
  std::atomic<std::uint64_t> bytes_written_by_class[kNumRegionClasses] = {};
  std::uint64_t allocations_by_class[kNumRegionClasses] = {};
};

class RegionManager {
 public:
  // `registry` receives the manager's metrics (allocations, traffic,
  // migrations, denials); nullptr means telemetry::DefaultRegistry().
  explicit RegionManager(simhw::Cluster& cluster, PlacementConfig config = {},
                         std::uint64_t key_seed = 0x5eedULL,
                         telemetry::Registry* registry = nullptr);

  RegionManager(const RegionManager&) = delete;
  RegionManager& operator=(const RegionManager&) = delete;

  // --- allocation --------------------------------------------------------------

  struct AllocRequest {
    std::uint64_t size = 0;
    Properties props;
    AccessHint hint;
    simhw::ComputeDeviceId observer;  // the compute device that will use it
    Principal owner;
  };

  // Resolves the request to the best satisfying device and allocates.
  // Note on initial contents: plain regions read back as zeros before the
  // first write; *confidential* regions read back unspecified bytes until
  // written (the decryption of an untouched backing store is keystream).
  Result<RegionId> Allocate(const AllocRequest& request);

  // Allocation pinned to an explicit device — the *traditional* model the
  // paper argues against; exists so baselines share the same bookkeeping.
  Result<RegionId> AllocateOn(simhw::MemoryDeviceId device, std::uint64_t size,
                              Properties props, Principal owner);

  // Frees a region. Caller must be the exclusive owner (or the last sharer).
  Status Free(RegionId id, const Principal& caller);

  // --- ownership ---------------------------------------------------------------

  // Moves exclusive ownership from `from` to `to`, re-evaluated from
  // `new_observer`'s point of view. If the region's properties still hold
  // from there, this is zero-copy (returns 0 cost); otherwise the region is
  // migrated to a satisfying device and the copy cost is returned.
  Result<SimDuration> Transfer(RegionId id, const Principal& from, const Principal& to,
                               simhw::ComputeDeviceId new_observer);

  // Converts an exclusive region to shared and adds `with` as a sharer.
  // Requires the region (on its current device) to be coherently accessible —
  // sharing without hardware coherence is rejected (§2.2(2) second bullet).
  // Pass require_coherent=false for hand-off patterns that only ever access
  // the region through the async interface.
  Status Share(RegionId id, const Principal& owner, const Principal& with,
               simhw::ComputeDeviceId with_observer, bool require_coherent = true);

  // Drops one sharer (or the exclusive owner); the region is freed when the
  // last reference is gone — the paper's "de-allocate after the last owning
  // task finishes".
  Status Release(RegionId id, const Principal& caller);

  // Runtime teardown: frees a region regardless of who still holds it. Only
  // the runtime may call this (job teardown, failure cleanup).
  Status ForceFree(RegionId id);

  // --- access ------------------------------------------------------------------

  // Opens a synchronous accessor. Fails (kFailedPrecondition) if the region's
  // device is not synchronously addressable from `observer` — Table 1's
  // "Sync ✗" devices can only be used asynchronously.
  Result<SyncAccessor> OpenSync(RegionId id, const Principal& who,
                                simhw::ComputeDeviceId observer);

  // Opens an asynchronous accessor (always possible while a path exists).
  Result<AsyncAccessor> OpenAsync(RegionId id, const Principal& who,
                                  simhw::ComputeDeviceId observer);

  // --- migration / tiering ------------------------------------------------------

  // Physically moves a region to `target`. Returns the simulated copy cost.
  Result<SimDuration> Migrate(RegionId id, simhw::MemoryDeviceId target);

  // Exponentially decays all hotness counters (call once per tiering epoch).
  void DecayHotness(double keep_fraction);

  // --- faults -------------------------------------------------------------------

  // Marks regions whose volatile backing lived on `device` as lost. Returns
  // the affected region ids. Call after a device/node failure.
  std::vector<RegionId> MarkLostOn(simhw::MemoryDeviceId device);

  // --- deterministic batching ---------------------------------------------------

  // Freezes per-device capacity/utilization as seen by placement scoring.
  // While an epoch is active, RankDevices scores against the snapshot instead
  // of live counters, so the *ranking* computed for an allocation does not
  // depend on which sibling task bodies happened to allocate first — the key
  // to placement determinism during the runtime's parallel-run phase. Actual
  // capacity is still enforced by the device allocator (a candidate that
  // filled up mid-epoch simply falls through to the next-ranked device).
  void BeginAllocationEpoch();
  void EndAllocationEpoch();

  // --- introspection -------------------------------------------------------------

  Result<RegionInfo> Info(RegionId id) const;

  // Cross-check hook for the static verifier (analysis::Verify): confirms the
  // region is currently in `expected` ownership state. Returns kInternal on
  // divergence — that means the analyzer's model and the executor's
  // bookkeeping disagree, which is a bug in one of them, not in user code.
  Status CheckOwnership(RegionId id, OwnershipState expected) const;

  // Test hook: the physical extent backing a region, so tests can inspect
  // raw (possibly encrypted) device bytes. Not part of the public API.
  Result<simhw::Extent> ExtentOfForTest(RegionId id) const;
  std::vector<RegionId> LiveRegions() const;
  std::vector<RegionId> RegionsOn(simhw::MemoryDeviceId device) const;
  const ManagerStats& stats() const { return stats_; }
  simhw::Cluster& cluster() { return *cluster_; }
  // The registry this manager reports into; region-layer components built on
  // top of the manager (tiering, swizzle cache, message queues) share it.
  telemetry::Registry* registry() const { return registry_; }

  // Attaches the virtual clock and span tracer so migrations show up as
  // timestamped spans in the shared event stream. Called by the runtime;
  // standalone managers work fine without (events are simply not emitted).
  void BindTrace(const simhw::VirtualClock* clock, telemetry::TraceBuffer* tracer);

  // Attaches the control-plane self-profiler so contended mu_ acquisitions
  // charge their blocking wait to the lock-wait phases. Called by the
  // runtime; standalone managers work fine without (counters still tick).
  void BindProfiler(telemetry::SelfProfiler* profiler) { profiler_ = profiler; }

  // Scores all satisfying devices for a request, best (lowest expected cost)
  // first. Exposed for introspection and benchmarking of placement itself.
  std::vector<simhw::MemoryDeviceId> RankDevices(const AllocRequest& request,
                                                 const Properties& props) const;

  // Explains where a live region's placement decision stands *now*: re-ranks
  // every memory device for the region's recorded request (size, properties
  // after any latency relax, original observer) against current cluster state
  // and marks the resident device. Always returns a non-empty candidate list
  // for a live region; regions placed with AllocateOn are reported as pinned.
  Result<RegionPlacementExplain> ExplainPlacement(RegionId id) const;

  // Data-path entry points used by accessors (revalidate on every call).
  Result<SimDuration> DoRead(RegionId id, const Principal& who, std::uint64_t offset,
                             void* dst, std::uint64_t size, const simhw::AccessView& view,
                             bool sequential, bool charge_latency);
  Result<SimDuration> DoWrite(RegionId id, const Principal& who, std::uint64_t offset,
                              const void* src, std::uint64_t size,
                              const simhw::AccessView& view, bool sequential,
                              bool charge_latency);

 private:
  struct Record {
    RegionId id;
    Properties props;
    AccessHint hint;
    std::uint64_t size = 0;
    simhw::Extent extent;
    OwnershipState state = OwnershipState::kExclusive;
    Principal owner;
    std::vector<Principal> sharers;
    std::uint32_t job = 0;      // confidentiality domain, fixed at creation
    std::uint64_t enc_key = 0;  // nonzero iff confidential
    // Placement provenance, for ExplainPlacement: who asked, and what
    // latency class actually won (differs from props.latency after a relax).
    // An invalid observer means the region was pinned via AllocateOn.
    simhw::ComputeDeviceId observer;
    LatencyClass effective_latency = LatencyClass::kAny;
    bool latency_relaxed = false;
    // Touched on the shared-lock data path, hence atomic. Everything else in
    // the record only changes under the exclusive lock.
    std::atomic<std::uint64_t> hotness{0};
    RegionClass klass = RegionClass::kOther;
    std::atomic<bool> lost{false};  // a full overwrite clears it (data path)
  };

  // Slab lookup by id; returns nullptr for ids never issued. Callers filter
  // kFreed themselves. Requires mu_ held (shared suffices).
  Record* FindRecord(RegionId id);
  const Record* FindRecord(RegionId id) const;

  Result<Record*> GetChecked(RegionId id, const Principal& who);
  Result<const Record*> GetConst(RegionId id) const;

  std::vector<simhw::MemoryDeviceId> RankDevicesLocked(const AllocRequest& request,
                                                       const Properties& props,
                                                       RegionPlacementExplain* explain =
                                                           nullptr) const;
  Result<RegionId> FinishAllocate(simhw::Extent extent, std::uint64_t size,
                                  const Properties& props, const AccessHint& hint,
                                  const Principal& owner, simhw::ComputeDeviceId observer,
                                  LatencyClass effective_latency, bool latency_relaxed);

  // Emits a point event on the region-manager track when tracing is bound.
  void EmitInstant(std::string name, std::string_view category, std::uint32_t job,
                   std::vector<telemetry::TraceArg> args);

  // Copy a live region's bytes to a fresh extent on `target`.
  Result<SimDuration> MoveExtent(Record& rec, simhw::MemoryDeviceId target);

  Status FreeLocked(Record& rec);

  // Instrument handles resolved once at construction; hot-path updates are
  // single relaxed atomic ops.
  struct Instruments {
    telemetry::Counter* allocations[kNumRegionClasses] = {};
    telemetry::Counter* alloc_bytes[kNumRegionClasses] = {};
    telemetry::Counter* bytes_read[kNumRegionClasses] = {};
    telemetry::Counter* bytes_written[kNumRegionClasses] = {};
    telemetry::Counter* alloc_failures = nullptr;
    telemetry::Counter* latency_relaxed = nullptr;
    telemetry::Counter* fragmentation_fallthroughs = nullptr;
    telemetry::Counter* frees = nullptr;
    telemetry::Counter* transfers_zero_copy = nullptr;
    telemetry::Counter* transfers_migrated = nullptr;
    telemetry::Counter* migrations = nullptr;
    telemetry::Counter* migrated_bytes = nullptr;
    telemetry::Counter* confidentiality_denials = nullptr;
    telemetry::Histogram* alloc_size = nullptr;
    // Lock probe counters, per mode (see ReadLock/WriteLock).
    telemetry::Counter* lock_acquisitions[2] = {};  // 0 = shared, 1 = exclusive
    telemetry::Counter* lock_contended[2] = {};
    telemetry::Counter* lock_wait_ns[2] = {};
  };

  // Every mu_ acquisition goes through these probes: try-lock first (the
  // uncontended common case costs one extra atomic), and only a failed try
  // falls back to blocking — counting the contention and charging the
  // measured wait to the profiler's lock-wait phases. This is how "the
  // region lock is (not) a bottleneck" becomes a number.
  std::shared_lock<std::shared_mutex> ReadLock() const;
  std::unique_lock<std::shared_mutex> WriteLock() const;

  simhw::Cluster* cluster_;
  PlacementConfig config_;
  Rng key_rng_;
  // Dense slab indexed by RegionId::value - 1 (ids issue sequentially from
  // next_id_ and records are never erased — FreeLocked marks kFreed), so the
  // hot path resolves a region with one bounds check instead of a hash
  // lookup. std::deque: appends never move existing records, which the
  // shared-lock readers and the atomic members require.
  std::deque<Record> slab_;
  std::uint32_t next_id_ = 1;
  ManagerStats stats_;
  telemetry::Registry* registry_;
  Instruments instruments_;
  const simhw::VirtualClock* clock_ = nullptr;
  telemetry::TraceBuffer* tracer_ = nullptr;
  telemetry::SelfProfiler* profiler_ = nullptr;

  // Reader/writer lock; see the class comment for the discipline.
  mutable std::shared_mutex mu_;

  // Placement snapshot for the active allocation epoch (empty when inactive).
  struct DeviceCapacity {
    std::uint64_t free_bytes = 0;
    double utilization = 0;
  };
  bool epoch_active_ = false;
  std::unordered_map<std::uint32_t, DeviceCapacity> epoch_;
};

}  // namespace memflow::region

#endif  // MEMFLOW_REGION_REGION_MANAGER_H_
