// Copyright (c) memflow authors. MIT license.
//
// The RegionManager is the memory half of the paper's runtime system: it
// resolves declarative allocation requests to physical devices (observer-
// relative, Figure 3), tracks ownership and lifetime (§2.2(2)), performs
// ownership transfers and — only when necessary — physical migration
// (Figure 4), enforces confidentiality (at-rest scrambling + job isolation),
// and maintains the hotness statistics used by the tiering daemon.
//
// Thread-safety (DESIGN.md §8, rewritten in §14): the global reader/writer
// lock no longer sits on the data path. Locking is split three ways:
//
//   * Record lookup is lock-free. Records live in chunked storage that is
//     never moved or erased; FinishAllocate fully constructs a record and
//     then release-publishes a new record count, so any reader that can see
//     an id can dereference it with two acquire loads and zero locks.
//   * The data path (DoRead/DoWrite/Open*/Info/CheckOwnership) takes only a
//     *stripe* shared lock — one of kLockStripes reader/writer locks picked
//     by region id — and bumps its counters with atomics. Task bodies
//     streaming bytes through different regions never touch a common lock.
//   * Structural mutations of existing records (free/transfer/share/migrate/
//     fault marking) hold the global lock exclusive AND the record's stripe
//     exclusive while mutating, so they exclude both concurrent structural
//     ops and in-flight accesses to the same stripe. Control-plane read
//     scans (RankDevices/LiveRegions/ExplainPlacement) take the global lock
//     shared only. Allocation takes the global lock exclusive (placement
//     reads cluster-wide capacity) but needs no stripe: the new record is
//     invisible until published.
//
// Lock order is strictly global → stripe; the data path takes stripes only,
// so it can never deadlock against the control path. Per-device extent and
// byte state is guarded by each MemoryDevice's own lock (see simhw/device.h),
// which is what makes dropping the global lock from the data path safe.

#ifndef MEMFLOW_REGION_REGION_MANAGER_H_
#define MEMFLOW_REGION_REGION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "region/accessor.h"
#include "region/properties.h"
#include "region/region.h"
#include "simhw/clock.h"
#include "simhw/cluster.h"
#include "telemetry/memaccess.h"
#include "telemetry/metrics.h"
#include "telemetry/selfprof.h"
#include "telemetry/trace.h"

namespace memflow::region {

// Placement scoring knobs. `pressure_weight` trades expected access cost
// against device fullness so one hot device does not absorb every region.
struct PlacementConfig {
  double pressure_weight = 0.25;
  // If true, a request no device can satisfy is retried with the latency
  // class relaxed one step (spill-to-slower-tier), mirroring what a tiering
  // OS would do; the region is flagged for later promotion.
  bool allow_latency_relax = false;
};

// Region classes, by the Table 2 property bundles. Used only for accounting
// (the Table 3 usage matrix); placement never branches on the class.
enum class RegionClass : int {
  kPrivateScratch = 0,  // sync, noncoherent
  kGlobalState = 1,     // sync, coherent
  kGlobalScratch = 2,   // async, coherent
  kOther = 3,
};
inline constexpr int kNumRegionClasses = 4;

std::string_view RegionClassName(RegionClass c);
RegionClass ClassifyProperties(const Properties& props);

// Why one memory device did (not) receive a region (DESIGN.md §11). Verdicts
// mirror the skip reasons inside the placement ranking loop.
enum class DeviceVerdict : std::uint8_t {
  kChosen,                // the region lives here
  kRankedLoser,           // satisfies the request but scored worse
  kDeviceFailed,          // device is down
  kNotAllocatable,        // device class does not accept allocations
  kInsufficientCapacity,  // not enough free bytes
  kNoPath,                // unreachable from the observer
  kPropertyMismatch,      // observer-relative view violates a property
};

std::string_view DeviceVerdictName(DeviceVerdict v);

struct RegionCandidate {
  simhw::MemoryDeviceId device;
  DeviceVerdict verdict = DeviceVerdict::kRankedLoser;
  double expected_cost_ns = 0;  // ExpectedUseCost through the view (scored only)
  double utilization = 0;       // device fullness folded into the score
  double score = 0;             // cost * (1 + pressure_weight * utilization)
  std::string detail;           // loser/rejection reason
};

// Ranked breakdown of a region placement decision: chosen device first, then
// satisfying losers by ascending score, then rejects with their reasons.
struct RegionPlacementExplain {
  RegionId region;
  std::uint64_t size = 0;
  Properties requested;              // as declared by the application
  LatencyClass effective_latency = LatencyClass::kAny;  // after any relax
  bool latency_relaxed = false;
  bool pinned = false;               // AllocateOn: placement was never ranked
  simhw::ComputeDeviceId observer;   // invalid when pinned
  simhw::MemoryDeviceId chosen;
  std::vector<RegionCandidate> candidates;
};

// Counters bumped on the shared-lock data path are atomics; everything else
// is mutated only under the exclusive lock. Reads are only meaningful from
// serial phases (tests, profiler, benches), never mid-batch.
struct ManagerStats {
  std::uint64_t allocations = 0;
  std::uint64_t failed_allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t transfers = 0;
  std::uint64_t zero_copy_transfers = 0;
  std::uint64_t migrations = 0;
  std::uint64_t bytes_migrated = 0;
  std::atomic<std::uint64_t> confidentiality_denials{0};
  // Traffic per region class (Table 3 usage matrix).
  std::atomic<std::uint64_t> bytes_read_by_class[kNumRegionClasses] = {};
  std::atomic<std::uint64_t> bytes_written_by_class[kNumRegionClasses] = {};
  std::uint64_t allocations_by_class[kNumRegionClasses] = {};
};

class RegionManager {
 public:
  // `registry` receives the manager's metrics (allocations, traffic,
  // migrations, denials); nullptr means telemetry::DefaultRegistry().
  explicit RegionManager(simhw::Cluster& cluster, PlacementConfig config = {},
                         std::uint64_t key_seed = 0x5eedULL,
                         telemetry::Registry* registry = nullptr);

  RegionManager(const RegionManager&) = delete;
  RegionManager& operator=(const RegionManager&) = delete;
  ~RegionManager();

  // --- allocation --------------------------------------------------------------

  struct AllocRequest {
    std::uint64_t size = 0;
    Properties props;
    AccessHint hint;
    simhw::ComputeDeviceId observer;  // the compute device that will use it
    Principal owner;
  };

  // Resolves the request to the best satisfying device and allocates.
  // Note on initial contents: plain regions read back as zeros before the
  // first write; *confidential* regions read back unspecified bytes until
  // written (the decryption of an untouched backing store is keystream).
  Result<RegionId> Allocate(const AllocRequest& request);

  // Allocation pinned to an explicit device — the *traditional* model the
  // paper argues against; exists so baselines share the same bookkeeping.
  Result<RegionId> AllocateOn(simhw::MemoryDeviceId device, std::uint64_t size,
                              Properties props, Principal owner);

  // Frees a region. Caller must be the exclusive owner (or the last sharer).
  Status Free(RegionId id, const Principal& caller);

  // --- ownership ---------------------------------------------------------------

  // Moves exclusive ownership from `from` to `to`, re-evaluated from
  // `new_observer`'s point of view. If the region's properties still hold
  // from there, this is zero-copy (returns 0 cost); otherwise the region is
  // migrated to a satisfying device and the copy cost is returned.
  Result<SimDuration> Transfer(RegionId id, const Principal& from, const Principal& to,
                               simhw::ComputeDeviceId new_observer);

  // Converts an exclusive region to shared and adds `with` as a sharer.
  // Requires the region (on its current device) to be coherently accessible —
  // sharing without hardware coherence is rejected (§2.2(2) second bullet).
  // Pass require_coherent=false for hand-off patterns that only ever access
  // the region through the async interface.
  Status Share(RegionId id, const Principal& owner, const Principal& with,
               simhw::ComputeDeviceId with_observer, bool require_coherent = true);

  // Drops one sharer (or the exclusive owner); the region is freed when the
  // last reference is gone — the paper's "de-allocate after the last owning
  // task finishes".
  Status Release(RegionId id, const Principal& caller);

  // Runtime teardown: frees a region regardless of who still holds it. Only
  // the runtime may call this (job teardown, failure cleanup).
  Status ForceFree(RegionId id);

  // --- access ------------------------------------------------------------------

  // Opens a synchronous accessor. Fails (kFailedPrecondition) if the region's
  // device is not synchronously addressable from `observer` — Table 1's
  // "Sync ✗" devices can only be used asynchronously.
  Result<SyncAccessor> OpenSync(RegionId id, const Principal& who,
                                simhw::ComputeDeviceId observer);

  // Opens an asynchronous accessor (always possible while a path exists).
  Result<AsyncAccessor> OpenAsync(RegionId id, const Principal& who,
                                  simhw::ComputeDeviceId observer);

  // --- migration / tiering ------------------------------------------------------

  // Physically moves a region to `target`. Returns the simulated copy cost.
  Result<SimDuration> Migrate(RegionId id, simhw::MemoryDeviceId target);

  // Exponentially decays all hotness counters (call once per tiering epoch).
  // Hotness lives in the access profiler (the single source of truth since
  // DESIGN.md §16); this simply forwards.
  void DecayHotness(double keep_fraction);

  // --- faults -------------------------------------------------------------------

  // Marks regions whose volatile backing lived on `device` as lost. Returns
  // the affected region ids. Call after a device/node failure.
  std::vector<RegionId> MarkLostOn(simhw::MemoryDeviceId device);

  // --- deterministic batching ---------------------------------------------------

  // Freezes per-device capacity/utilization as seen by placement scoring.
  // While an epoch is active, RankDevices scores against the snapshot instead
  // of live counters, so the *ranking* computed for an allocation does not
  // depend on which sibling task bodies happened to allocate first — the key
  // to placement determinism during the runtime's parallel-run phase. Actual
  // capacity is still enforced by the device allocator (a candidate that
  // filled up mid-epoch simply falls through to the next-ranked device).
  void BeginAllocationEpoch();
  void EndAllocationEpoch();

  // --- introspection -------------------------------------------------------------

  Result<RegionInfo> Info(RegionId id) const;

  // Cross-check hook for the static verifier (analysis::Verify): confirms the
  // region is currently in `expected` ownership state. Returns kInternal on
  // divergence — that means the analyzer's model and the executor's
  // bookkeeping disagree, which is a bug in one of them, not in user code.
  Status CheckOwnership(RegionId id, OwnershipState expected) const;

  // Test hook: the physical extent backing a region, so tests can inspect
  // raw (possibly encrypted) device bytes. Not part of the public API.
  Result<simhw::Extent> ExtentOfForTest(RegionId id) const;
  std::vector<RegionId> LiveRegions() const;
  std::vector<RegionId> RegionsOn(simhw::MemoryDeviceId device) const;
  const ManagerStats& stats() const { return stats_; }
  simhw::Cluster& cluster() { return *cluster_; }
  // The registry this manager reports into; region-layer components built on
  // top of the manager (tiering, swizzle cache, message queues) share it.
  telemetry::Registry* registry() const { return registry_; }

  // Attaches the virtual clock and span tracer so migrations show up as
  // timestamped spans in the shared event stream. Called by the runtime;
  // standalone managers work fine without (events are simply not emitted).
  void BindTrace(const simhw::VirtualClock* clock, telemetry::TraceBuffer* tracer);

  // Attaches the control-plane self-profiler so contended lock acquisitions
  // charge their blocking wait to the lock-wait phases. Called by the
  // runtime; standalone managers work fine without (counters still tick).
  void BindProfiler(telemetry::SelfProfiler* profiler) { profiler_ = profiler; }

  // Memory-access observability (DESIGN.md §16): every DoRead/DoWrite feeds
  // the profiler, which owns hotness, miss-ratio curves, working-set and
  // pattern telemetry. Always constructed and enabled (tiering needs hotness
  // even in standalone managers); disable for overhead A/B benches.
  telemetry::AccessProfiler& access_profiler() { return *memprof_; }
  const telemetry::AccessProfiler& access_profiler() const { return *memprof_; }

  // Reports an access served by a layer above the data path (e.g. a swizzle
  // cache hit) to the access profiler, so reuse/WSS telemetry still sees
  // app-level locality that caches absorb. No cost is charged.
  void NoteCachedAccess(RegionId id, std::uint64_t offset, std::uint64_t size,
                        telemetry::AccessPatternKind pattern);

  // Monotonic counter bumped on every event that can change a placement or
  // cost estimate: allocation, free, migration, device loss. The cost model
  // memoizes Estimate() keyed on this counter (CostModel::
  // BindInvalidationCounter); any churn invalidates the whole memo on the
  // next lookup. See DESIGN.md §14.
  const std::atomic<std::uint64_t>& churn_counter() const { return churn_epoch_; }

  // Invalidation hook for churn the manager cannot observe itself — e.g. the
  // fault injector failing devices or links directly on the cluster.
  void NoteExternalChurn() { churn_epoch_.fetch_add(1, std::memory_order_release); }

  // Scores all satisfying devices for a request, best (lowest expected cost)
  // first. Exposed for introspection and benchmarking of placement itself.
  std::vector<simhw::MemoryDeviceId> RankDevices(const AllocRequest& request,
                                                 const Properties& props) const;

  // Explains where a live region's placement decision stands *now*: re-ranks
  // every memory device for the region's recorded request (size, properties
  // after any latency relax, original observer) against current cluster state
  // and marks the resident device. Always returns a non-empty candidate list
  // for a live region; regions placed with AllocateOn are reported as pinned.
  Result<RegionPlacementExplain> ExplainPlacement(RegionId id) const;

  // Data-path entry points used by accessors (revalidate on every call).
  // `pattern` is the accessor-side stride verdict for this access, forwarded
  // to the access profiler.
  Result<SimDuration> DoRead(RegionId id, const Principal& who, std::uint64_t offset,
                             void* dst, std::uint64_t size, const simhw::AccessView& view,
                             bool sequential, bool charge_latency,
                             telemetry::AccessPatternKind pattern =
                                 telemetry::AccessPatternKind::kRandom);
  Result<SimDuration> DoWrite(RegionId id, const Principal& who, std::uint64_t offset,
                              const void* src, std::uint64_t size,
                              const simhw::AccessView& view, bool sequential,
                              bool charge_latency,
                              telemetry::AccessPatternKind pattern =
                                  telemetry::AccessPatternKind::kRandom);

 private:
  struct Record {
    RegionId id;
    Properties props;
    AccessHint hint;
    std::uint64_t size = 0;
    simhw::Extent extent;
    OwnershipState state = OwnershipState::kExclusive;
    Principal owner;
    std::vector<Principal> sharers;
    std::uint32_t job = 0;      // confidentiality domain, fixed at creation
    std::uint64_t enc_key = 0;  // nonzero iff confidential
    // Placement provenance, for ExplainPlacement: who asked, and what
    // latency class actually won (differs from props.latency after a relax).
    // An invalid observer means the region was pinned via AllocateOn.
    simhw::ComputeDeviceId observer;
    LatencyClass effective_latency = LatencyClass::kAny;
    bool latency_relaxed = false;
    // Worker-count-stable identity: hash of (owner principal, per-owner
    // allocation sequence). Raw region ids are the one value the executor
    // lets diverge across worker counts, so everything the access profiler
    // fingerprints keys off this tag instead. (Hotness lives in the
    // profiler, keyed by raw id — it is never fingerprinted.)
    std::uint64_t stable_tag = 0;
    RegionClass klass = RegionClass::kOther;
    std::atomic<bool> lost{false};  // a full overwrite clears it (data path)
  };

  // Chunked record storage. Chunks are allocated on demand, never freed or
  // moved while the manager lives, and a record becomes visible only via the
  // release-store of published_ after it is fully constructed — which is what
  // lets FindRecord run without any lock.
  static constexpr std::uint32_t kChunkShift = 10;                 // 1024 records/chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kMaxChunks = 4096;                // 4M regions max
  struct Chunk;

  // Stripe locks for the record data path; picked by id so accesses to
  // different regions rarely share a lock. Must be a power of two.
  static constexpr std::uint32_t kLockStripes = 16;

  // Slab lookup by id; returns nullptr for ids never issued. Callers filter
  // kFreed themselves. Lock-free: safe from any thread, any time.
  Record* FindRecord(RegionId id);
  const Record* FindRecord(RegionId id) const;

  // Record at slab index (id.value - 1). Index must be < published_.
  Record* RecordAt(std::uint32_t index) const;

  Result<Record*> GetChecked(RegionId id, const Principal& who);
  Result<const Record*> GetConst(RegionId id) const;

  std::vector<simhw::MemoryDeviceId> RankDevicesLocked(const AllocRequest& request,
                                                       const Properties& props,
                                                       RegionPlacementExplain* explain =
                                                           nullptr) const;
  Result<RegionId> FinishAllocate(simhw::Extent extent, std::uint64_t size,
                                  const Properties& props, const AccessHint& hint,
                                  const Principal& owner, simhw::ComputeDeviceId observer,
                                  LatencyClass effective_latency, bool latency_relaxed);

  // Emits a point event on the region-manager track when tracing is bound.
  void EmitInstant(std::string name, std::string_view category, std::uint32_t job,
                   std::vector<telemetry::TraceArg> args);

  // Copy a live region's bytes to a fresh extent on `target`.
  Result<SimDuration> MoveExtent(Record& rec, simhw::MemoryDeviceId target);

  Status FreeLocked(Record& rec);

  // Instrument handles resolved once at construction; hot-path updates are
  // single relaxed atomic ops.
  struct Instruments {
    telemetry::Counter* allocations[kNumRegionClasses] = {};
    telemetry::Counter* alloc_bytes[kNumRegionClasses] = {};
    telemetry::Counter* bytes_read[kNumRegionClasses] = {};
    telemetry::Counter* bytes_written[kNumRegionClasses] = {};
    telemetry::Counter* alloc_failures = nullptr;
    telemetry::Counter* latency_relaxed = nullptr;
    telemetry::Counter* fragmentation_fallthroughs = nullptr;
    telemetry::Counter* frees = nullptr;
    telemetry::Counter* transfers_zero_copy = nullptr;
    telemetry::Counter* transfers_migrated = nullptr;
    telemetry::Counter* migrations = nullptr;
    telemetry::Counter* migrated_bytes = nullptr;
    telemetry::Counter* confidentiality_denials = nullptr;
    telemetry::Histogram* alloc_size = nullptr;
    // Lock probe counters, [mode][path]: mode 0 = shared / 1 = exclusive,
    // path 0 = data (stripe locks) / 1 = control (global lock). The split
    // makes `memflow_top --health` show which path contention lives on.
    telemetry::Counter* lock_acquisitions[2][2] = {};
    telemetry::Counter* lock_contended[2][2] = {};
    telemetry::Counter* lock_wait_ns[2][2] = {};
  };

  // Every lock acquisition goes through these probes: try-lock first (the
  // uncontended common case costs one extra atomic), and only a failed try
  // falls back to blocking — counting the contention and charging the
  // measured wait to the profiler's lock-wait phases. This is how "the
  // region lock is (not) a bottleneck" becomes a number. Global-lock waits
  // count as path=control, stripe-lock waits as path=data.
  std::shared_lock<std::shared_mutex> ReadLock() const;
  std::unique_lock<std::shared_mutex> WriteLock() const;
  std::shared_lock<std::shared_mutex> StripeReadLock(RegionId id) const;
  std::unique_lock<std::shared_mutex> StripeWriteLock(RegionId id) const;

  simhw::Cluster* cluster_;
  PlacementConfig config_;
  Rng key_rng_;
  // Chunked slab indexed by RegionId::value - 1 (ids issue sequentially and
  // records are never erased — FreeLocked marks kFreed). Chunk pointers are
  // published with release stores and never change afterwards; published_ is
  // the release-published count of fully-constructed records. Together they
  // make FindRecord safe with no lock at all (see the class comment).
  std::atomic<Chunk*> chunks_[kMaxChunks] = {};
  std::atomic<std::uint32_t> published_{0};
  std::uint32_t next_id_ = 1;  // only FinishAllocate (global-exclusive) writes
  ManagerStats stats_;
  telemetry::Registry* registry_;
  Instruments instruments_;
  const simhw::VirtualClock* clock_ = nullptr;
  telemetry::TraceBuffer* tracer_ = nullptr;
  telemetry::SelfProfiler* profiler_ = nullptr;
  std::unique_ptr<telemetry::AccessProfiler> memprof_;
  // Per-owner allocation sequence numbers backing Record::stable_tag. Only
  // FinishAllocate (global-exclusive) touches it; task-body allocation order
  // within one owner is program order, hence worker-count-deterministic.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> alloc_seq_;

  // Global control-path lock and per-record stripe locks; see the class
  // comment for the discipline.
  mutable std::shared_mutex mu_;
  mutable std::shared_mutex stripe_mu_[kLockStripes];

  // Cost/placement invalidation counter; see churn_counter().
  std::atomic<std::uint64_t> churn_epoch_{0};

  // Placement snapshot for the active allocation epoch, dense by device id
  // (cleared when inactive).
  struct DeviceCapacity {
    std::uint64_t free_bytes = 0;
    double utilization = 0;
  };
  bool epoch_active_ = false;
  std::vector<DeviceCapacity> epoch_;
};

}  // namespace memflow::region

#endif  // MEMFLOW_REGION_REGION_MANAGER_H_
