// Copyright (c) memflow authors. MIT license.

#include "region/crypto.h"

#include <cstring>

#include "common/rng.h"

namespace memflow::region {

namespace {

// Keystream word for 8-byte block `block_index` under `key`.
std::uint64_t StreamWord(std::uint64_t key, std::uint64_t block_index) {
  std::uint64_t state = key ^ (block_index * 0xd1342543de82ef95ULL);
  return SplitMix64(state);
}

}  // namespace

void ApplyKeystream(std::uint64_t key, std::uint64_t offset, void* buf, std::size_t len) {
  auto* bytes = static_cast<unsigned char*>(buf);
  std::size_t i = 0;
  while (i < len) {
    const std::uint64_t pos = offset + i;
    const std::uint64_t block = pos / 8;
    const std::uint64_t word = StreamWord(key, block);
    const unsigned start = static_cast<unsigned>(pos % 8);
    const std::size_t n = std::min<std::size_t>(8 - start, len - i);
    const auto* ks = reinterpret_cast<const unsigned char*>(&word);
    for (std::size_t k = 0; k < n; ++k) {
      bytes[i + k] ^= ks[start + k];
    }
    i += n;
  }
}

}  // namespace memflow::region
