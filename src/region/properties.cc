// Copyright (c) memflow authors. MIT license.

#include "region/properties.h"

namespace memflow::region {

std::string_view LatencyClassName(LatencyClass c) {
  switch (c) {
    case LatencyClass::kAny:
      return "any";
    case LatencyClass::kHigh:
      return "high";
    case LatencyClass::kMedium:
      return "medium";
    case LatencyClass::kLow:
      return "low";
  }
  return "?";
}

std::string_view BandwidthClassName(BandwidthClass c) {
  switch (c) {
    case BandwidthClass::kAny:
      return "any";
    case BandwidthClass::kLow:
      return "low";
    case BandwidthClass::kMedium:
      return "medium";
    case BandwidthClass::kHigh:
      return "high";
  }
  return "?";
}

SimDuration LatencyCeiling(LatencyClass c) {
  switch (c) {
    case LatencyClass::kAny:
      return SimDuration::Seconds(3600);
    case LatencyClass::kHigh:
      return SimDuration::Micros(200);
    case LatencyClass::kMedium:
      return SimDuration::Micros(2);
    case LatencyClass::kLow:
      return SimDuration::Nanos(300);
  }
  return SimDuration{};
}

double BandwidthFloor(BandwidthClass c) {
  switch (c) {
    case BandwidthClass::kAny:
      return 0.0;
    case BandwidthClass::kLow:
      return 1.0;
    case BandwidthClass::kMedium:
      return 20.0;
    case BandwidthClass::kHigh:
      return 80.0;
  }
  return 0.0;
}

std::string Properties::ToString() const {
  std::string out = "{lat=";
  out += LatencyClassName(latency);
  out += ", bw=";
  out += BandwidthClassName(bandwidth);
  if (persistent) {
    out += ", persistent";
  }
  if (coherent) {
    out += ", coherent";
  }
  if (sync) {
    out += ", sync";
  }
  if (confidential) {
    out += ", confidential";
  }
  out += "}";
  return out;
}

bool Satisfies(const simhw::AccessView& view, const Properties& props) {
  if (props.sync && !view.sync) {
    return false;
  }
  if (!view.addressable && !view.sync) {
    // Device only reachable through an async interface (RDMA/block): fine
    // unless sync was required — handled above. Nothing else to check here;
    // reachability itself was established by View().
  }
  if (props.coherent && !view.coherent) {
    return false;
  }
  if (props.persistent && !view.persistent) {
    return false;
  }
  if (view.read_latency > LatencyCeiling(props.latency)) {
    return false;
  }
  if (view.read_bw_gbps < BandwidthFloor(props.bandwidth)) {
    return false;
  }
  // Confidentiality is satisfiable on any device: the runtime encrypts at
  // rest and isolates by job. It constrains *handling*, not placement.
  return true;
}

std::string SatisfiesDetail(const simhw::AccessView& view, const Properties& props) {
  if (props.sync && !view.sync) {
    return "requires sync addressability, device is async-only from here";
  }
  if (props.coherent && !view.coherent) {
    return "requires cache coherence, path is non-coherent";
  }
  if (props.persistent && !view.persistent) {
    return "requires persistence, device is volatile";
  }
  if (view.read_latency > LatencyCeiling(props.latency)) {
    return "read latency " + std::to_string(view.read_latency.ns) + "ns exceeds " +
           std::string(LatencyClassName(props.latency)) + " ceiling " +
           std::to_string(LatencyCeiling(props.latency).ns) + "ns";
  }
  if (view.read_bw_gbps < BandwidthFloor(props.bandwidth)) {
    return "bandwidth " + std::to_string(view.read_bw_gbps) + " GB/s below " +
           std::string(BandwidthClassName(props.bandwidth)) + " floor " +
           std::to_string(BandwidthFloor(props.bandwidth)) + " GB/s";
  }
  return "";
}

SimDuration ExpectedUseCost(const simhw::AccessView& view, std::uint64_t size,
                            const AccessHint& hint) {
  // Split the traversed bytes by pattern and direction, cost each burst.
  const auto traversed =
      static_cast<std::uint64_t>(static_cast<double>(size) * hint.reuse_factor);
  const auto seq_bytes =
      static_cast<std::uint64_t>(static_cast<double>(traversed) * hint.sequential_fraction);
  const std::uint64_t rnd_bytes = traversed - seq_bytes;

  const auto split = [&](std::uint64_t bytes, bool sequential) {
    const auto reads =
        static_cast<std::uint64_t>(static_cast<double>(bytes) * hint.read_fraction);
    const std::uint64_t writes = bytes - reads;
    SimDuration cost{};
    if (reads > 0) {
      cost += view.ReadCost(reads, sequential);
    }
    if (writes > 0) {
      cost += view.WriteCost(writes, sequential);
    }
    return cost;
  };

  return split(seq_bytes, true) + split(rnd_bytes, false);
}

}  // namespace memflow::region
