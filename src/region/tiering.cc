// Copyright (c) memflow authors. MIT license.

#include "region/tiering.h"

#include <algorithm>

#include "common/log.h"

namespace memflow::region {

namespace {

// Probe size for ranking device speed: large enough that bandwidth matters,
// small enough that latency still shows.
constexpr std::uint64_t kSpeedProbeBytes = 256 * kKiB;

// Migration signal: hotness per KiB. `info.hotness` is sourced from the
// access profiler (the single per-region access counter since DESIGN.md
// §16) through RegionManager::Info.
double HotnessDensity(const RegionInfo& info) {
  return static_cast<double>(info.hotness) /
         (static_cast<double>(info.size) / static_cast<double>(kKiB));
}

}  // namespace

TieringDaemon::TieringDaemon(RegionManager& manager, simhw::ComputeDeviceId observer,
                             TieringConfig config)
    : manager_(&manager), observer_(observer), config_(config) {
  telemetry::Registry& reg = *manager_->registry();
  promotions_ = reg.GetCounter("tiering_migrations_total",
                                "Regions moved by the tiering daemon",
                                {{"direction", "promote"}});
  demotions_ = reg.GetCounter("tiering_migrations_total",
                               "Regions moved by the tiering daemon",
                               {{"direction", "demote"}});
  moved_bytes_ = reg.GetCounter("tiering_moved_bytes_total",
                                 "Bytes moved between tiers by the tiering daemon");
  epochs_ = reg.GetCounter("tiering_epochs_total", "Tiering epochs executed");
}

std::vector<simhw::MemoryDeviceId> TieringDaemon::RankedTiers(const Properties& props) const {
  struct Tier {
    std::int64_t speed_ns;
    simhw::MemoryDeviceId device;
  };
  simhw::Cluster& cluster = manager_->cluster();
  const std::vector<simhw::MemoryDeviceId> devices = cluster.AllMemoryDevices();
  std::vector<Tier> tiers;
  tiers.reserve(devices.size());
  for (const simhw::MemoryDeviceId dev : devices) {
    if (cluster.memory(dev).failed() || !cluster.memory(dev).profile().allocatable) {
      continue;
    }
    auto view = cluster.View(observer_, dev);
    if (!view.ok() || !Satisfies(*view, props)) {
      continue;
    }
    tiers.push_back({view->ReadCost(kSpeedProbeBytes, /*sequential=*/true).ns, dev});
  }
  std::sort(tiers.begin(), tiers.end(), [](const Tier& a, const Tier& b) {
    if (a.speed_ns != b.speed_ns) {
      return a.speed_ns < b.speed_ns;
    }
    return a.device < b.device;
  });
  std::vector<simhw::MemoryDeviceId> out;
  out.reserve(tiers.size());
  for (const Tier& t : tiers) {
    out.push_back(t.device);
  }
  return out;
}

TieringReport TieringDaemon::RunEpoch() {
  TieringReport report;
  simhw::Cluster& cluster = manager_->cluster();

  // Snapshot live regions with their info; skip lost/shared-out regions that
  // a migration would race with (in this single-threaded simulation sharing
  // is safe to move, but we keep the policy conservative and simple).
  struct Entry {
    RegionInfo info;
    double density;
  };
  const std::vector<RegionId> live = manager_->LiveRegions();
  std::vector<Entry> entries;
  entries.reserve(live.size());
  for (const RegionId id : live) {
    auto info = manager_->Info(id);
    if (!info.ok() || info->lost) {
      continue;
    }
    entries.push_back({*info, HotnessDensity(*info)});
  }

  // Hottest first for promotion.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.density > b.density; });

  std::uint64_t budget = config_.epoch_budget_bytes;

  // Promotion pass.
  for (const Entry& e : entries) {
    if (budget < e.info.size || e.density < config_.promote_density) {
      continue;
    }
    const std::vector<simhw::MemoryDeviceId> tiers = RankedTiers(e.info.props);
    for (const simhw::MemoryDeviceId dev : tiers) {
      if (dev == e.info.device) {
        break;  // already on the fastest reachable tier
      }
      if (cluster.memory(dev).free_bytes() < e.info.size) {
        continue;
      }
      auto cost = manager_->Migrate(e.info.id, dev);
      if (cost.ok()) {
        report.promoted++;
        report.bytes_moved += e.info.size;
        report.migration_cost += *cost;
        budget -= e.info.size;
      }
      break;
    }
  }

  // Demotion pass: coldest first, only off overfull devices.
  std::reverse(entries.begin(), entries.end());
  for (const Entry& e : entries) {
    if (budget < e.info.size || e.density > config_.demote_density) {
      continue;
    }
    if (cluster.memory(e.info.device).utilization() < config_.high_watermark) {
      continue;
    }
    const std::vector<simhw::MemoryDeviceId> tiers = RankedTiers(e.info.props);
    // Find the current tier, demote to the next slower one with space.
    auto cur = std::find(tiers.begin(), tiers.end(), e.info.device);
    if (cur == tiers.end()) {
      continue;
    }
    for (auto it = std::next(cur); it != tiers.end(); ++it) {
      if (cluster.memory(*it).free_bytes() < e.info.size) {
        continue;
      }
      auto cost = manager_->Migrate(e.info.id, *it);
      if (cost.ok()) {
        report.demoted++;
        report.bytes_moved += e.info.size;
        report.migration_cost += *cost;
        budget -= e.info.size;
      }
      break;
    }
  }

  manager_->DecayHotness(config_.decay);
  epochs_->Increment();
  promotions_->Increment(static_cast<std::uint64_t>(report.promoted));
  demotions_->Increment(static_cast<std::uint64_t>(report.demoted));
  moved_bytes_->Increment(report.bytes_moved);
  MEMFLOW_LOG(kDebug) << "tiering epoch" << Kv("promoted", report.promoted)
                      << Kv("demoted", report.demoted) << Kv("bytes", report.bytes_moved);
  return report;
}

}  // namespace memflow::region
