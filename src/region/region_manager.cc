// Copyright (c) memflow authors. MIT license.

#include "region/region_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>

#include "common/hash.h"
#include "common/log.h"
#include "region/crypto.h"

namespace memflow::region {

namespace {

// Migration copy chunk. Large enough to amortize per-chunk overhead, small
// enough to keep peak host memory bounded during big migrations.
constexpr std::uint64_t kCopyChunk = 256 * kKiB;

// Trace track for migration spans. Device tracks use the (small) device ids,
// so a large constant keeps the migration lane visually separate.
constexpr std::uint64_t kMigrationTrack = 1000;

LatencyClass RelaxOneStep(LatencyClass c) {
  switch (c) {
    case LatencyClass::kLow:
      return LatencyClass::kMedium;
    case LatencyClass::kMedium:
      return LatencyClass::kHigh;
    case LatencyClass::kHigh:
    case LatencyClass::kAny:
      return LatencyClass::kAny;
  }
  return LatencyClass::kAny;
}

// Probed lock acquisition shared by the global and stripe locks: try-lock
// first (the uncontended case costs one extra atomic), and only a failed try
// falls back to blocking, counting the contention and charging the measured
// wait to the profiler's lock-wait phase.
template <typename LockT, typename MutexT>
LockT AcquireProbed(MutexT& mu, telemetry::Counter* acquisitions,
                    telemetry::Counter* contended, telemetry::Counter* wait_ns,
                    telemetry::SelfProfiler* profiler, telemetry::Phase phase) {
  acquisitions->Increment();
  LockT lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    contended->Increment();
    const auto start = std::chrono::steady_clock::now();
    lock.lock();
    const std::int64_t waited = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
    wait_ns->Increment(static_cast<std::uint64_t>(waited));
    if (profiler != nullptr) {
      profiler->Charge(phase, waited);
    }
  }
  return lock;
}

}  // namespace

struct RegionManager::Chunk {
  Record records[kChunkSize];
};

std::string_view RegionClassName(RegionClass c) {
  switch (c) {
    case RegionClass::kPrivateScratch:
      return "private-scratch";
    case RegionClass::kGlobalState:
      return "global-state";
    case RegionClass::kGlobalScratch:
      return "global-scratch";
    case RegionClass::kOther:
      return "other";
  }
  return "?";
}

RegionClass ClassifyProperties(const Properties& props) {
  if (props.coherent && props.sync) {
    return RegionClass::kGlobalState;
  }
  if (props.coherent && !props.sync) {
    return RegionClass::kGlobalScratch;
  }
  if (props.sync && !props.coherent) {
    return RegionClass::kPrivateScratch;
  }
  return RegionClass::kOther;
}

std::string_view DeviceVerdictName(DeviceVerdict v) {
  switch (v) {
    case DeviceVerdict::kChosen:
      return "chosen";
    case DeviceVerdict::kRankedLoser:
      return "ranked-loser";
    case DeviceVerdict::kDeviceFailed:
      return "device-failed";
    case DeviceVerdict::kNotAllocatable:
      return "not-allocatable";
    case DeviceVerdict::kInsufficientCapacity:
      return "insufficient-capacity";
    case DeviceVerdict::kNoPath:
      return "no-path";
    case DeviceVerdict::kPropertyMismatch:
      return "property-mismatch";
  }
  return "?";
}

std::string_view OwnershipStateName(OwnershipState s) {
  switch (s) {
    case OwnershipState::kExclusive:
      return "exclusive";
    case OwnershipState::kShared:
      return "shared";
    case OwnershipState::kFreed:
      return "freed";
  }
  return "?";
}

RegionManager::RegionManager(simhw::Cluster& cluster, PlacementConfig config,
                             std::uint64_t key_seed, telemetry::Registry* registry)
    : cluster_(&cluster),
      config_(config),
      key_rng_(key_seed),
      registry_(registry != nullptr ? registry : &telemetry::DefaultRegistry()) {
  telemetry::Registry& reg = *registry_;
  for (int c = 0; c < kNumRegionClasses; ++c) {
    const telemetry::Labels labels = {
        {"region_class", std::string(RegionClassName(static_cast<RegionClass>(c)))}};
    instruments_.allocations[c] =
        reg.GetCounter("region_allocations_total", "Regions allocated", labels);
    instruments_.alloc_bytes[c] =
        reg.GetCounter("region_alloc_bytes_total", "Bytes allocated in regions", labels);
    instruments_.bytes_read[c] =
        reg.GetCounter("region_bytes_read_total", "Bytes read from regions", labels);
    instruments_.bytes_written[c] =
        reg.GetCounter("region_bytes_written_total", "Bytes written to regions", labels);
  }
  instruments_.alloc_failures = reg.GetCounter(
      "region_alloc_failures_total", "Allocation requests no device could satisfy");
  instruments_.latency_relaxed = reg.GetCounter(
      "region_latency_relaxed_total",
      "Allocations that succeeded only after relaxing the latency class");
  instruments_.fragmentation_fallthroughs = reg.GetCounter(
      "region_fragmentation_fallthroughs_total",
      "Ranked placement candidates skipped because the device extent allocator "
      "was too fragmented despite sufficient free bytes");
  instruments_.frees = reg.GetCounter("region_frees_total", "Regions freed");
  instruments_.transfers_zero_copy = reg.GetCounter(
      "region_transfers_total", "Ownership transfers", {{"kind", "zero_copy"}});
  instruments_.transfers_migrated = reg.GetCounter(
      "region_transfers_total", "Ownership transfers", {{"kind", "migrated"}});
  instruments_.migrations =
      reg.GetCounter("region_migrations_total", "Physical region migrations");
  instruments_.migrated_bytes =
      reg.GetCounter("region_migrated_bytes_total", "Bytes physically migrated");
  instruments_.confidentiality_denials = reg.GetCounter(
      "region_confidentiality_denials_total", "Accesses denied by confidentiality checks");
  instruments_.alloc_size = reg.GetHistogram(
      "region_alloc_size_bytes", "Distribution of region allocation sizes",
      telemetry::HistogramSpec{/*first_bound=*/256.0, /*growth=*/4.0, /*buckets=*/16});
  const char* lock_modes[2] = {"shared", "exclusive"};
  const char* lock_paths[2] = {"data", "control"};
  for (int m = 0; m < 2; ++m) {
    for (int p = 0; p < 2; ++p) {
      const telemetry::Labels labels = {{"mode", lock_modes[m]}, {"path", lock_paths[p]}};
      instruments_.lock_acquisitions[m][p] = reg.GetCounter(
          "region_lock_acquisitions_total", "RegionManager lock acquisitions", labels);
      instruments_.lock_contended[m][p] = reg.GetCounter(
          "region_lock_contended_total",
          "RegionManager lock acquisitions that had to block (try-lock failed)", labels);
      instruments_.lock_wait_ns[m][p] = reg.GetCounter(
          "region_lock_wait_ns_total",
          "Host ns spent blocked acquiring a RegionManager lock", labels);
    }
  }

  // Memory-access observability (DESIGN.md §16). Constructed eagerly and
  // enabled by default: hotness lives here now, and tiering needs it to tick
  // even in standalone managers.
  memprof_ = std::make_unique<telemetry::AccessProfiler>();
  std::vector<std::string> device_names;
  for (const simhw::MemoryDeviceId dev : cluster.AllMemoryDevices()) {
    if (dev.value >= device_names.size()) {
      device_names.resize(dev.value + 1);
    }
    device_names[dev.value] = cluster.memory(dev).name();
  }
  std::vector<std::string> latency_names;
  latency_names.reserve(kNumLatencyClasses);
  for (int c = 0; c < kNumLatencyClasses; ++c) {
    latency_names.emplace_back(LatencyClassName(static_cast<LatencyClass>(c)));
  }
  memprof_->BindScopeNames(std::move(device_names), std::move(latency_names));
}

RegionManager::~RegionManager() {
  for (auto& slot : chunks_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

std::shared_lock<std::shared_mutex> RegionManager::ReadLock() const {
  return AcquireProbed<std::shared_lock<std::shared_mutex>>(
      mu_, instruments_.lock_acquisitions[0][1], instruments_.lock_contended[0][1],
      instruments_.lock_wait_ns[0][1], profiler_, telemetry::Phase::kLockWaitShared);
}

std::unique_lock<std::shared_mutex> RegionManager::WriteLock() const {
  return AcquireProbed<std::unique_lock<std::shared_mutex>>(
      mu_, instruments_.lock_acquisitions[1][1], instruments_.lock_contended[1][1],
      instruments_.lock_wait_ns[1][1], profiler_, telemetry::Phase::kLockWaitExclusive);
}

std::shared_lock<std::shared_mutex> RegionManager::StripeReadLock(RegionId id) const {
  std::shared_mutex& mu = stripe_mu_[id.value & (kLockStripes - 1)];
  return AcquireProbed<std::shared_lock<std::shared_mutex>>(
      mu, instruments_.lock_acquisitions[0][0], instruments_.lock_contended[0][0],
      instruments_.lock_wait_ns[0][0], profiler_, telemetry::Phase::kLockWaitShared);
}

std::unique_lock<std::shared_mutex> RegionManager::StripeWriteLock(RegionId id) const {
  std::shared_mutex& mu = stripe_mu_[id.value & (kLockStripes - 1)];
  return AcquireProbed<std::unique_lock<std::shared_mutex>>(
      mu, instruments_.lock_acquisitions[1][0], instruments_.lock_contended[1][0],
      instruments_.lock_wait_ns[1][0], profiler_, telemetry::Phase::kLockWaitExclusive);
}

void RegionManager::BindTrace(const simhw::VirtualClock* clock,
                              telemetry::TraceBuffer* tracer) {
  clock_ = clock;
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    tracer_->SetTrackName(kMigrationTrack, "region-manager");
  }
}

void RegionManager::EmitInstant(std::string name, std::string_view category,
                                std::uint32_t job, std::vector<telemetry::TraceArg> args) {
  if (tracer_ == nullptr || clock_ == nullptr) {
    return;
  }
  telemetry::TraceEvent event;
  event.type = telemetry::TraceEventType::kInstant;
  event.name = std::move(name);
  event.category = category;
  event.track = kMigrationTrack;
  event.job = job;
  event.ts = clock_->now();
  event.args = std::move(args);
  tracer_->Emit(std::move(event));
}

void RegionManager::BeginAllocationEpoch() {
  auto lock = WriteLock();
  epoch_.clear();
  for (const simhw::MemoryDeviceId dev : cluster_->AllMemoryDevices()) {
    const simhw::MemoryDevice& device = cluster_->memory(dev);
    if (epoch_.size() <= static_cast<std::size_t>(dev.value)) {
      epoch_.resize(static_cast<std::size_t>(dev.value) + 1);
    }
    epoch_[dev.value] = DeviceCapacity{device.free_bytes(), device.utilization()};
  }
  epoch_active_ = true;
}

void RegionManager::EndAllocationEpoch() {
  auto lock = WriteLock();
  epoch_active_ = false;
  epoch_.clear();
}

std::vector<simhw::MemoryDeviceId> RegionManager::RankDevicesLocked(
    const AllocRequest& request, const Properties& props,
    RegionPlacementExplain* explain) const {
  struct Candidate {
    double score;
    simhw::MemoryDeviceId device;
  };
  const auto reject = [explain](simhw::MemoryDeviceId dev, DeviceVerdict verdict,
                                std::string detail) {
    if (explain != nullptr) {
      explain->candidates.push_back({dev, verdict, 0, 0, 0, std::move(detail)});
    }
  };
  const std::vector<simhw::MemoryDeviceId> devices = cluster_->AllMemoryDevices();
  std::vector<Candidate> candidates;
  candidates.reserve(devices.size());
  for (const simhw::MemoryDeviceId dev : devices) {
    const simhw::MemoryDevice& device = cluster_->memory(dev);
    // During an allocation epoch, score against the frozen capacity snapshot
    // so the ranking is independent of sibling allocations in this batch.
    std::uint64_t free_bytes = device.free_bytes();
    double utilization = device.utilization();
    if (epoch_active_ && static_cast<std::size_t>(dev.value) < epoch_.size()) {
      free_bytes = epoch_[dev.value].free_bytes;
      utilization = epoch_[dev.value].utilization;
    }
    if (device.failed()) {
      reject(dev, DeviceVerdict::kDeviceFailed, "device is down");
      continue;
    }
    if (!device.profile().allocatable) {
      reject(dev, DeviceVerdict::kNotAllocatable, "device class does not host regions");
      continue;
    }
    if (free_bytes < request.size) {
      reject(dev, DeviceVerdict::kInsufficientCapacity,
             std::to_string(free_bytes) + " B free < " + std::to_string(request.size) +
                 " B requested");
      continue;
    }
    auto view = cluster_->View(request.observer, dev);
    if (!view.ok()) {
      reject(dev, DeviceVerdict::kNoPath, "unreachable from observer");
      continue;
    }
    if (!Satisfies(*view, props)) {
      reject(dev, DeviceVerdict::kPropertyMismatch, SatisfiesDetail(*view, props));
      continue;
    }
    const SimDuration cost = ExpectedUseCost(*view, request.size, request.hint);
    const double score =
        static_cast<double>(cost.ns) * (1.0 + config_.pressure_weight * utilization);
    if (explain != nullptr) {
      explain->candidates.push_back({dev, DeviceVerdict::kRankedLoser,
                                     static_cast<double>(cost.ns), utilization, score, ""});
    }
    candidates.push_back({score, dev});
  }
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    if (a.score != b.score) {
      return a.score < b.score;
    }
    return a.device < b.device;  // deterministic tiebreak
  });
  std::vector<simhw::MemoryDeviceId> out;
  out.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    out.push_back(c.device);
  }
  return out;
}

std::vector<simhw::MemoryDeviceId> RegionManager::RankDevices(const AllocRequest& request,
                                                              const Properties& props) const {
  auto lock = ReadLock();
  return RankDevicesLocked(request, props);
}

Result<RegionId> RegionManager::FinishAllocate(simhw::Extent extent, std::uint64_t size,
                                               const Properties& props,
                                               const AccessHint& hint,
                                               const Principal& owner,
                                               simhw::ComputeDeviceId observer,
                                               LatencyClass effective_latency,
                                               bool latency_relaxed) {
  const std::uint32_t index = next_id_ - 1;
  MEMFLOW_CHECK_MSG(index < kMaxChunks * kChunkSize, "region id space exhausted");
  const auto id = RegionId(next_id_++);
  const std::uint32_t chunk_index = index >> kChunkShift;
  Chunk* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();  // records default-construct as kExclusive placeholders,
    chunks_[chunk_index].store(chunk, std::memory_order_release);  // invisible until published_
  }
  Record& rec = chunk->records[index & (kChunkSize - 1)];
  rec.id = id;
  rec.props = props;  // requested (unrelaxed) properties, for audits
  rec.hint = hint;
  rec.size = size;
  rec.extent = extent;
  rec.state = OwnershipState::kExclusive;
  rec.owner = owner;
  rec.job = owner.job;
  rec.observer = observer;
  rec.effective_latency = effective_latency;
  rec.latency_relaxed = latency_relaxed;
  // Worker-count-stable identity for the access profiler: per-owner
  // allocation order is program order inside a task body, so this sequence —
  // unlike the raw id — is identical at any worker count.
  rec.stable_tag = HashCombine(HashCombine(owner.job, owner.actor),
                               alloc_seq_[{owner.job, owner.actor}]++);
  if (props.confidential) {
    rec.enc_key = key_rng_.Next() | 1;
  }
  rec.klass = ClassifyProperties(props);
  stats_.allocations_by_class[static_cast<int>(rec.klass)]++;
  instruments_.allocations[static_cast<int>(rec.klass)]->Increment();
  instruments_.alloc_bytes[static_cast<int>(rec.klass)]->Increment(size);
  instruments_.alloc_size->Observe(static_cast<double>(size));
  stats_.allocations++;
  churn_epoch_.fetch_add(1, std::memory_order_release);
  // Publish: the record is fully constructed, so lock-free readers may now
  // resolve its id. Release pairs with the acquire in FindRecord.
  published_.store(id.value, std::memory_order_release);
  return id;
}

Result<RegionId> RegionManager::Allocate(const AllocRequest& request) {
  if (request.size == 0) {
    return InvalidArgument("zero-sized region");
  }
  auto lock = WriteLock();
  Properties props = request.props;
  std::vector<simhw::MemoryDeviceId> ranked = RankDevicesLocked(request, props);
  bool relaxed = false;
  if (ranked.empty() && config_.allow_latency_relax) {
    while (ranked.empty() && props.latency != LatencyClass::kAny) {
      props.latency = RelaxOneStep(props.latency);
      ranked = RankDevicesLocked(request, props);
      relaxed = true;
    }
  }
  for (const simhw::MemoryDeviceId dev : ranked) {
    auto extent = cluster_->memory(dev).Allocate(request.size);
    if (!extent.ok()) {
      // Fragmentation on this device; try the next candidate. Surfaced as a
      // fallback event: the ranking said yes but the extent allocator said no.
      instruments_.fragmentation_fallthroughs->Increment();
      EmitInstant("placement fallback: fragmentation", "placement", request.owner.job,
                  {{"device", cluster_->memory(dev).name()},
                   {"bytes", std::to_string(request.size), /*quoted=*/false}});
      continue;
    }
    auto id = FinishAllocate(*extent, request.size, request.props, request.hint,
                             request.owner, request.observer, props.latency, relaxed);
    if (relaxed) {
      instruments_.latency_relaxed->Increment();
      EmitInstant("placement fallback: latency relaxed", "placement", request.owner.job,
                  {{"region", std::to_string(id->value), /*quoted=*/false},
                   {"requested", std::string(LatencyClassName(request.props.latency))},
                   {"granted", std::string(LatencyClassName(props.latency))}});
    }
    MEMFLOW_LOG(kDebug) << "region" << Kv("id", id->value) << Kv("bytes", request.size)
                        << Kv("props", request.props.ToString())
                        << Kv("device", cluster_->memory(dev).name());
    return id;
  }
  stats_.failed_allocations++;
  instruments_.alloc_failures->Increment();
  EmitInstant("placement fallback: allocation failed", "placement", request.owner.job,
              {{"props", props.ToString()},
               {"bytes", std::to_string(request.size), /*quoted=*/false},
               {"observer", std::to_string(request.observer.value), /*quoted=*/false}});
  return ResourceExhausted("no device satisfies " + props.ToString() + " for " +
                           std::to_string(request.size) + " B from observer " +
                           std::to_string(request.observer.value));
}

Result<RegionId> RegionManager::AllocateOn(simhw::MemoryDeviceId device, std::uint64_t size,
                                           Properties props, Principal owner) {
  if (size == 0) {
    return InvalidArgument("zero-sized region");
  }
  auto lock = WriteLock();
  MEMFLOW_ASSIGN_OR_RETURN(simhw::Extent extent, cluster_->memory(device).Allocate(size));
  return FinishAllocate(extent, size, props, AccessHint{}, owner,
                        /*observer=*/{}, props.latency, /*latency_relaxed=*/false);
}

RegionManager::Record* RegionManager::RecordAt(std::uint32_t index) const {
  Chunk* chunk = chunks_[index >> kChunkShift].load(std::memory_order_acquire);
  return &chunk->records[index & (kChunkSize - 1)];
}

RegionManager::Record* RegionManager::FindRecord(RegionId id) {
  // Acquire on published_ pairs with FinishAllocate's release: an id at or
  // below the published count is fully constructed. No lock needed.
  if (id.value == 0 || id.value > published_.load(std::memory_order_acquire)) {
    return nullptr;
  }
  return RecordAt(id.value - 1);
}

const RegionManager::Record* RegionManager::FindRecord(RegionId id) const {
  return const_cast<RegionManager*>(this)->FindRecord(id);
}

Result<RegionManager::Record*> RegionManager::GetChecked(RegionId id, const Principal& who) {
  Record* rec = FindRecord(id);
  if (rec == nullptr || rec->state == OwnershipState::kFreed) {
    return NotFound("region " + std::to_string(id.value) + " is not live");
  }
  // Confidentiality: only principals of the owning job (or the runtime) may
  // touch a confidential region at all.
  if (rec->enc_key != 0 && who != kRuntimePrincipal && who.job != rec->job) {
    stats_.confidentiality_denials++;
    instruments_.confidentiality_denials->Increment();
    EmitInstant("confidentiality denial", "placement", who.job,
                {{"region", std::to_string(id.value), /*quoted=*/false},
                 {"owning_job", std::to_string(rec->job), /*quoted=*/false}});
    return PermissionDenied("region " + std::to_string(id.value) +
                            " is confidential to job " + std::to_string(rec->job));
  }
  // Ownership: the caller must hold the region.
  if (who != kRuntimePrincipal) {
    if (rec->state == OwnershipState::kExclusive) {
      if (!(rec->owner == who)) {
        return FailedPrecondition("caller does not own region " + std::to_string(id.value) +
                                  " (" + std::string(OwnershipStateName(rec->state)) + ")");
      }
    } else {
      const bool is_sharer =
          std::find(rec->sharers.begin(), rec->sharers.end(), who) != rec->sharers.end();
      if (!is_sharer) {
        return FailedPrecondition("caller is not a sharer of region " +
                                  std::to_string(id.value));
      }
    }
  }
  return rec;
}

Result<const RegionManager::Record*> RegionManager::GetConst(RegionId id) const {
  const Record* rec = FindRecord(id);
  if (rec == nullptr || rec->state == OwnershipState::kFreed) {
    return NotFound("region " + std::to_string(id.value) + " is not live");
  }
  return rec;
}

Status RegionManager::FreeLocked(Record& rec) {
  MEMFLOW_RETURN_IF_ERROR(cluster_->memory(rec.extent.device).Free(rec.extent));
  rec.state = OwnershipState::kFreed;
  rec.sharers.clear();
  stats_.frees++;
  instruments_.frees->Increment();
  churn_epoch_.fetch_add(1, std::memory_order_release);
  return OkStatus();
}

Status RegionManager::Free(RegionId id, const Principal& caller) {
  auto lock = WriteLock();
  auto stripe = StripeWriteLock(id);
  MEMFLOW_ASSIGN_OR_RETURN(Record * rec, GetChecked(id, caller));
  if (rec->state == OwnershipState::kShared && rec->sharers.size() > 1) {
    return FailedPrecondition("region " + std::to_string(id.value) +
                              " still has other sharers; use Release");
  }
  return FreeLocked(*rec);
}

Result<SimDuration> RegionManager::Transfer(RegionId id, const Principal& from,
                                            const Principal& to,
                                            simhw::ComputeDeviceId new_observer) {
  auto lock = WriteLock();
  auto stripe = StripeWriteLock(id);
  MEMFLOW_ASSIGN_OR_RETURN(Record * rec, GetChecked(id, from));
  if (rec->state != OwnershipState::kExclusive) {
    return FailedPrecondition("only exclusively-owned regions can be transferred");
  }
  if (rec->enc_key != 0 && to.job != rec->job) {
    stats_.confidentiality_denials++;
    instruments_.confidentiality_denials->Increment();
    EmitInstant("confidentiality denial", "placement", to.job,
                {{"region", std::to_string(id.value), /*quoted=*/false},
                 {"owning_job", std::to_string(rec->job), /*quoted=*/false},
                 {"op", "transfer"}});
    return PermissionDenied("confidential region cannot leave job " +
                            std::to_string(rec->job));
  }
  if (rec->lost) {
    return DataLoss("region " + std::to_string(id.value) + " lost its backing");
  }

  stats_.transfers++;

  // If the region still satisfies its properties from the new observer's
  // point of view, handover is pure bookkeeping — the paper's zero-copy case.
  auto view = cluster_->View(new_observer, rec->extent.device);
  if (view.ok() && Satisfies(*view, rec->props)) {
    rec->owner = to;
    stats_.zero_copy_transfers++;
    instruments_.transfers_zero_copy->Increment();
    return SimDuration{};
  }

  // Otherwise the runtime migrates to a device that does satisfy them
  // (Figure 4's "copied after the first task is done" fallback).
  AllocRequest probe;
  probe.size = rec->size;
  probe.props = rec->props;
  probe.hint = rec->hint;
  probe.observer = new_observer;
  probe.owner = to;
  const std::vector<simhw::MemoryDeviceId> ranked = RankDevicesLocked(probe, rec->props);
  for (const simhw::MemoryDeviceId dev : ranked) {
    if (dev == rec->extent.device) {
      continue;
    }
    auto cost = MoveExtent(*rec, dev);
    if (cost.ok()) {
      rec->owner = to;
      instruments_.transfers_migrated->Increment();
      return cost;
    }
  }
  return ResourceExhausted("no reachable device satisfies " + rec->props.ToString() +
                           " from the new observer");
}

Status RegionManager::Share(RegionId id, const Principal& owner, const Principal& with,
                            simhw::ComputeDeviceId with_observer, bool require_coherent) {
  auto lock = WriteLock();
  auto stripe = StripeWriteLock(id);
  MEMFLOW_ASSIGN_OR_RETURN(Record * rec, GetChecked(id, owner));
  if (rec->enc_key != 0 && with.job != rec->job) {
    stats_.confidentiality_denials++;
    instruments_.confidentiality_denials->Increment();
    EmitInstant("confidentiality denial", "placement", with.job,
                {{"region", std::to_string(id.value), /*quoted=*/false},
                 {"owning_job", std::to_string(rec->job), /*quoted=*/false},
                 {"op", "share"}});
    return PermissionDenied("confidential region cannot be shared outside job " +
                            std::to_string(rec->job));
  }
  // Shared ownership demands hardware coherence from every sharer (§2.2(2)).
  MEMFLOW_ASSIGN_OR_RETURN(simhw::AccessView view,
                           cluster_->View(with_observer, rec->extent.device));
  if (require_coherent && !view.coherent) {
    return FailedPrecondition(
        "sharing requires cache-coherent access from the new sharer's device; "
        "migrate the region first");
  }
  if (rec->state == OwnershipState::kExclusive) {
    rec->state = OwnershipState::kShared;
    rec->sharers = {rec->owner};
  }
  if (std::find(rec->sharers.begin(), rec->sharers.end(), with) == rec->sharers.end()) {
    rec->sharers.push_back(with);
  }
  return OkStatus();
}

Status RegionManager::Release(RegionId id, const Principal& caller) {
  auto lock = WriteLock();
  auto stripe = StripeWriteLock(id);
  MEMFLOW_ASSIGN_OR_RETURN(Record * rec, GetChecked(id, caller));
  if (rec->state == OwnershipState::kExclusive) {
    return FreeLocked(*rec);
  }
  auto it = std::find(rec->sharers.begin(), rec->sharers.end(), caller);
  MEMFLOW_CHECK(it != rec->sharers.end());  // GetChecked verified membership
  rec->sharers.erase(it);
  if (rec->sharers.empty()) {
    return FreeLocked(*rec);  // last owner finished -> de-allocate (§2.3)
  }
  return OkStatus();
}

Status RegionManager::ForceFree(RegionId id) {
  auto lock = WriteLock();
  auto stripe = StripeWriteLock(id);
  Record* rec = FindRecord(id);
  if (rec == nullptr || rec->state == OwnershipState::kFreed) {
    return NotFound("region " + std::to_string(id.value) + " is not live");
  }
  return FreeLocked(*rec);
}

Result<SyncAccessor> RegionManager::OpenSync(RegionId id, const Principal& who,
                                             simhw::ComputeDeviceId observer) {
  auto lock = StripeReadLock(id);
  MEMFLOW_ASSIGN_OR_RETURN(Record * rec, GetChecked(id, who));
  MEMFLOW_ASSIGN_OR_RETURN(simhw::AccessView view,
                           cluster_->View(observer, rec->extent.device));
  if (!view.sync) {
    return FailedPrecondition(
        cluster_->memory(rec->extent.device).name() +
        " is not synchronously addressable from this device; use OpenAsync");
  }
  return SyncAccessor(this, id, who, view, rec->size);
}

Result<AsyncAccessor> RegionManager::OpenAsync(RegionId id, const Principal& who,
                                               simhw::ComputeDeviceId observer) {
  auto lock = StripeReadLock(id);
  MEMFLOW_ASSIGN_OR_RETURN(Record * rec, GetChecked(id, who));
  MEMFLOW_ASSIGN_OR_RETURN(simhw::AccessView view,
                           cluster_->View(observer, rec->extent.device));
  return AsyncAccessor(this, id, who, view, rec->size);
}

Result<SimDuration> RegionManager::MoveExtent(Record& rec, simhw::MemoryDeviceId target) {
  simhw::MemoryDevice& src_dev = cluster_->memory(rec.extent.device);
  simhw::MemoryDevice& dst_dev = cluster_->memory(target);
  MEMFLOW_ASSIGN_OR_RETURN(simhw::Extent dst_extent, dst_dev.Allocate(rec.size));

  // Inter-device path (DMA route). Devices in disconnected fabrics cannot
  // exchange data.
  auto path = cluster_->topology().Path(cluster_->VertexOf(rec.extent.device),
                                        cluster_->VertexOf(target));
  if (!path.ok()) {
    (void)dst_dev.Free(dst_extent);
    return path.status();
  }

  SimDuration total = path->latency;
  std::vector<std::byte> buffer(std::min<std::uint64_t>(kCopyChunk, rec.size));
  for (std::uint64_t off = 0; off < rec.size; off += buffer.size()) {
    const std::uint64_t n = std::min<std::uint64_t>(buffer.size(), rec.size - off);
    // Ciphertext moves as-is: the keystream is region-relative, so migration
    // never needs the key.
    auto rc = src_dev.Read(rec.extent, off, buffer.data(), n);
    if (!rc.ok()) {
      (void)dst_dev.Free(dst_extent);
      return rc.status();
    }
    auto wc = dst_dev.Write(dst_extent, off, buffer.data(), n);
    if (!wc.ok()) {
      (void)dst_dev.Free(dst_extent);
      return wc.status();
    }
    const auto wire = SimDuration::Nanos(
        static_cast<std::int64_t>(static_cast<double>(n) / path->bw_gbps));
    total += *rc + *wc + wire;
  }

  MEMFLOW_RETURN_IF_ERROR(src_dev.Free(rec.extent));
  rec.extent = dst_extent;
  churn_epoch_.fetch_add(1, std::memory_order_release);
  stats_.migrations++;
  stats_.bytes_migrated += rec.size;
  instruments_.migrations->Increment();
  instruments_.migrated_bytes->Increment(rec.size);
  if (tracer_ != nullptr && clock_ != nullptr) {
    telemetry::TraceEvent event;
    event.type = telemetry::TraceEventType::kSpan;
    event.name = "migrate region " + std::to_string(rec.id.value);
    event.category = "migration";
    event.track = kMigrationTrack;
    event.job = rec.job;
    event.ts = clock_->now();
    event.dur = total;
    event.args = {{"region", std::to_string(rec.id.value), /*quoted=*/false},
                  {"bytes", std::to_string(rec.size), /*quoted=*/false},
                  {"src", src_dev.name()},
                  {"dst", dst_dev.name()}};
    tracer_->Emit(std::move(event));
  }
  MEMFLOW_LOG(kDebug) << "migrated" << Kv("region", rec.id.value) << Kv("bytes", rec.size)
                      << Kv("src", src_dev.name()) << Kv("dst", dst_dev.name());
  return total;
}

Result<SimDuration> RegionManager::Migrate(RegionId id, simhw::MemoryDeviceId target) {
  auto lock = WriteLock();
  auto stripe = StripeWriteLock(id);
  Record* rec = FindRecord(id);
  if (rec == nullptr || rec->state == OwnershipState::kFreed) {
    return NotFound("region is not live");
  }
  if (rec->lost) {
    return DataLoss("region lost its backing; nothing to migrate");
  }
  if (rec->extent.device == target) {
    return SimDuration{};
  }
  return MoveExtent(*rec, target);
}

void RegionManager::DecayHotness(double keep_fraction) {
  MEMFLOW_CHECK(keep_fraction >= 0.0 && keep_fraction <= 1.0);
  // Hotness is owned by the access profiler since DESIGN.md §16; decay runs
  // from serial control phases (tiering epochs), same as before the move.
  memprof_->DecayHotness(keep_fraction);
}

std::vector<RegionId> RegionManager::MarkLostOn(simhw::MemoryDeviceId device) {
  // Any device failure can change placement/cost answers, whether or not
  // regions were lost — invalidate the cost-model memo unconditionally.
  churn_epoch_.fetch_add(1, std::memory_order_release);
  std::vector<RegionId> lost;
  if (cluster_->memory(device).profile().persistent) {
    return lost;  // persistent media keeps its contents across failures
  }
  auto lock = WriteLock();
  const std::uint32_t n = published_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    Record& rec = *RecordAt(i);
    if (rec.state != OwnershipState::kFreed && rec.extent.device == device && !rec.lost) {
      rec.lost = true;
      lost.push_back(rec.id);
    }
  }
  return lost;
}

Result<RegionInfo> RegionManager::Info(RegionId id) const {
  auto lock = StripeReadLock(id);
  MEMFLOW_ASSIGN_OR_RETURN(const Record* rec, GetConst(id));
  RegionInfo info;
  info.id = rec->id;
  info.size = rec->size;
  info.props = rec->props;
  info.device = rec->extent.device;
  info.state = rec->state;
  info.owner = rec->owner;
  info.shared_refs = static_cast<int>(rec->sharers.size());
  info.hotness = memprof_->RegionHotness(id.value);
  info.lost = rec->lost.load(std::memory_order_relaxed);
  return info;
}

Status RegionManager::CheckOwnership(RegionId id, OwnershipState expected) const {
  auto lock = StripeReadLock(id);
  MEMFLOW_ASSIGN_OR_RETURN(const Record* rec, GetConst(id));
  if (rec->state != expected) {
    return Internal("ownership cross-check failed for region " + std::to_string(id.value) +
                    ": static analysis predicted " + std::string(OwnershipStateName(expected)) +
                    " but region is " + std::string(OwnershipStateName(rec->state)));
  }
  return OkStatus();
}

Result<RegionPlacementExplain> RegionManager::ExplainPlacement(RegionId id) const {
  auto lock = ReadLock();
  MEMFLOW_ASSIGN_OR_RETURN(const Record* rec, GetConst(id));
  RegionPlacementExplain out;
  out.region = rec->id;
  out.size = rec->size;
  out.requested = rec->props;
  out.effective_latency = rec->effective_latency;
  out.latency_relaxed = rec->latency_relaxed;
  out.observer = rec->observer;
  out.chosen = rec->extent.device;
  if (!rec->observer.valid()) {
    // AllocateOn: the traditional model — nothing was ranked, by design.
    out.pinned = true;
    out.candidates.push_back({rec->extent.device, DeviceVerdict::kChosen, 0, 0, 0,
                              "explicitly pinned via AllocateOn (traditional model)"});
    return out;
  }

  // Re-rank the recorded request (with the latency class that actually won)
  // against current cluster state, capturing per-device verdicts.
  AllocRequest probe;
  probe.size = rec->size;
  probe.props = rec->props;
  probe.props.latency = rec->effective_latency;
  probe.hint = rec->hint;
  probe.observer = rec->observer;
  probe.owner = rec->owner;
  (void)RankDevicesLocked(probe, probe.props, &out);

  // Mark the resident device. It normally appears among the scored
  // candidates; after a migration or capacity churn it may not — then we add
  // it explicitly so the chosen device is always part of the answer.
  bool found = false;
  for (RegionCandidate& c : out.candidates) {
    if (c.device == rec->extent.device) {
      found = true;
      if (c.verdict == DeviceVerdict::kRankedLoser) {
        c.verdict = DeviceVerdict::kChosen;
        c.detail = "resident; best satisfying device at allocation time";
      } else {
        c.verdict = DeviceVerdict::kChosen;
        c.detail = "resident, but no longer satisfies the request from here: " + c.detail;
      }
    }
  }
  if (!found) {
    out.candidates.push_back({rec->extent.device, DeviceVerdict::kChosen, 0, 0, 0,
                              "resident (placed or migrated here earlier)"});
  }
  // Ranked order: chosen first, then satisfying losers by score, then
  // rejects; device id breaks ties deterministically.
  std::stable_sort(out.candidates.begin(), out.candidates.end(),
                   [](const RegionCandidate& a, const RegionCandidate& b) {
                     const auto rank = [](const RegionCandidate& c) {
                       if (c.verdict == DeviceVerdict::kChosen) return 0;
                       if (c.verdict == DeviceVerdict::kRankedLoser) return 1;
                       return 2;
                     };
                     if (rank(a) != rank(b)) return rank(a) < rank(b);
                     if (a.score != b.score) return a.score < b.score;
                     return a.device < b.device;
                   });
  // Name the margin for satisfying losers: by how much they lost.
  double best_score = 0;
  for (const RegionCandidate& c : out.candidates) {
    if (c.verdict == DeviceVerdict::kChosen) {
      best_score = c.score;
      break;
    }
  }
  for (RegionCandidate& c : out.candidates) {
    if (c.verdict == DeviceVerdict::kRankedLoser && c.detail.empty()) {
      const auto delta = static_cast<long long>(c.score - best_score);
      c.detail = delta >= 0 ? "loses by " + std::to_string(delta) + " ns"
                            : "now scores " + std::to_string(-delta) +
                                  " ns better (conditions changed since placement)";
    }
  }
  return out;
}

Result<simhw::Extent> RegionManager::ExtentOfForTest(RegionId id) const {
  auto lock = StripeReadLock(id);
  MEMFLOW_ASSIGN_OR_RETURN(const Record* rec, GetConst(id));
  return rec->extent;
}

std::vector<RegionId> RegionManager::LiveRegions() const {
  auto lock = ReadLock();
  std::vector<RegionId> out;
  const std::uint32_t n = published_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {  // slab order == id order
    const Record& rec = *RecordAt(i);
    if (rec.state != OwnershipState::kFreed) {
      out.push_back(rec.id);
    }
  }
  return out;
}

std::vector<RegionId> RegionManager::RegionsOn(simhw::MemoryDeviceId device) const {
  auto lock = ReadLock();
  std::vector<RegionId> out;
  const std::uint32_t n = published_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Record& rec = *RecordAt(i);
    if (rec.state != OwnershipState::kFreed && rec.extent.device == device) {
      out.push_back(rec.id);
    }
  }
  return out;
}

Result<SimDuration> RegionManager::DoRead(RegionId id, const Principal& who,
                                          std::uint64_t offset, void* dst, std::uint64_t size,
                                          const simhw::AccessView& view, bool sequential,
                                          bool charge_latency,
                                          telemetry::AccessPatternKind pattern) {
  auto lock = StripeReadLock(id);
  MEMFLOW_ASSIGN_OR_RETURN(Record * rec, GetChecked(id, who));
  if (rec->lost) {
    return DataLoss("region " + std::to_string(id.value) + " lost its backing");
  }
  if (offset + size > rec->size) {
    return InvalidArgument("read beyond region bounds");
  }
  auto media = cluster_->memory(rec->extent.device).Read(rec->extent, offset, dst, size);
  if (!media.ok()) {
    return media.status();
  }
  if (rec->enc_key != 0) {
    ApplyKeystream(rec->enc_key, offset, dst, size);
  }
  if (memprof_->enabled()) {
    telemetry::AccessSample sample;
    sample.region = id.value;
    sample.region_key = rec->stable_tag;
    sample.offset = offset;
    sample.size = size;
    sample.region_size = rec->size;
    sample.device = rec->extent.device.value;
    sample.latency_class = static_cast<std::uint32_t>(rec->effective_latency);
    sample.pattern = pattern;
    sample.is_write = false;
    sample.latency_charged = charge_latency;
    sample.vtime_ns = clock_ != nullptr ? clock_->now().ns : -1;
    memprof_->Note(sample);
  }
  stats_.bytes_read_by_class[static_cast<int>(rec->klass)].fetch_add(
      size, std::memory_order_relaxed);
  instruments_.bytes_read[static_cast<int>(rec->klass)]->Increment(size);
  SimDuration cost = view.ReadCost(size, sequential);
  if (!charge_latency) {
    cost.ns = std::max<std::int64_t>(0, cost.ns - view.read_latency.ns);
  }
  return cost;
}

void RegionManager::NoteCachedAccess(RegionId id, std::uint64_t offset,
                                     std::uint64_t size,
                                     telemetry::AccessPatternKind pattern) {
  if (!memprof_->enabled()) {
    return;
  }
  auto lock = StripeReadLock(id);
  auto rec = GetConst(id);
  if (!rec.ok()) {
    return;
  }
  telemetry::AccessSample sample;
  sample.region = id.value;
  sample.region_key = (*rec)->stable_tag;
  sample.offset = offset;
  sample.size = size;
  sample.region_size = (*rec)->size;
  sample.device = (*rec)->extent.device.value;
  sample.latency_class = static_cast<std::uint32_t>((*rec)->effective_latency);
  sample.pattern = pattern;
  sample.is_write = false;
  sample.latency_charged = false;  // served locally: no latency to hide
  sample.vtime_ns = clock_ != nullptr ? clock_->now().ns : -1;
  memprof_->Note(sample);
}

Result<SimDuration> RegionManager::DoWrite(RegionId id, const Principal& who,
                                           std::uint64_t offset, const void* src,
                                           std::uint64_t size, const simhw::AccessView& view,
                                           bool sequential, bool charge_latency,
                                           telemetry::AccessPatternKind pattern) {
  auto lock = StripeReadLock(id);
  MEMFLOW_ASSIGN_OR_RETURN(Record * rec, GetChecked(id, who));
  if (offset + size > rec->size) {
    return InvalidArgument("write beyond region bounds");
  }
  Result<SimDuration> media = InvalidArgument("unreached");
  if (rec->enc_key != 0) {
    // Scramble into a bounce buffer so plaintext never reaches the device.
    std::vector<std::byte> bounce(size);
    std::memcpy(bounce.data(), src, size);
    ApplyKeystream(rec->enc_key, offset, bounce.data(), size);
    media = cluster_->memory(rec->extent.device).Write(rec->extent, offset, bounce.data(),
                                                       size);
  } else {
    media = cluster_->memory(rec->extent.device).Write(rec->extent, offset, src, size);
  }
  if (!media.ok()) {
    return media.status();
  }
  // A successful write refreshes the data even if a fault had voided it.
  if (rec->lost.load(std::memory_order_relaxed) && offset == 0 && size == rec->size) {
    rec->lost.store(false, std::memory_order_relaxed);
  }
  if (memprof_->enabled()) {
    telemetry::AccessSample sample;
    sample.region = id.value;
    sample.region_key = rec->stable_tag;
    sample.offset = offset;
    sample.size = size;
    sample.region_size = rec->size;
    sample.device = rec->extent.device.value;
    sample.latency_class = static_cast<std::uint32_t>(rec->effective_latency);
    sample.pattern = pattern;
    sample.is_write = true;
    sample.latency_charged = charge_latency;
    sample.vtime_ns = clock_ != nullptr ? clock_->now().ns : -1;
    memprof_->Note(sample);
  }
  stats_.bytes_written_by_class[static_cast<int>(rec->klass)].fetch_add(
      size, std::memory_order_relaxed);
  instruments_.bytes_written[static_cast<int>(rec->klass)]->Increment(size);
  SimDuration cost = view.WriteCost(size, sequential);
  if (!charge_latency) {
    cost.ns = std::max<std::int64_t>(0, cost.ns - view.write_latency.ns);
  }
  return cost;
}

}  // namespace memflow::region
