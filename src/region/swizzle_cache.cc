// Copyright (c) memflow authors. MIT license.

#include "region/swizzle_cache.h"

namespace memflow::region {

SwizzleCache::SwizzleCache(RegionManager& regions, simhw::ComputeDeviceId observer,
                           Principal who, std::uint64_t capacity_bytes)
    : regions_(&regions), observer_(observer), who_(who), capacity_(capacity_bytes) {
  MEMFLOW_CHECK(capacity_bytes > 0);
  telemetry::Registry& reg = *regions_->registry();
  hits_ = reg.GetCounter("swizzle_cache_events_total", "Swizzle cache events",
                          {{"event", "hit"}});
  misses_ = reg.GetCounter("swizzle_cache_events_total", "Swizzle cache events",
                            {{"event", "miss"}});
  evictions_ = reg.GetCounter("swizzle_cache_events_total", "Swizzle cache events",
                               {{"event", "eviction"}});
  writebacks_ = reg.GetCounter("swizzle_cache_events_total", "Swizzle cache events",
                                {{"event", "writeback"}});
  resident_bytes_ = reg.GetGauge("swizzle_cache_resident_bytes",
                                  "Bytes currently resident in the swizzle cache");
}

SwizzleCache::~SwizzleCache() {
  // Best-effort write-back of dirty entries; drop everything.
  for (auto& [key, entry] : entries_) {
    if (entry.dirty) {
      (void)WriteBack(key, entry);
    }
  }
}

Status SwizzleCache::WriteBack(const Key& key, Entry& entry) {
  MEMFLOW_ASSIGN_OR_RETURN(AsyncAccessor acc,
                           regions_->OpenAsync(RegionId(key.region), who_, observer_));
  acc.EnqueueWrite(key.offset, entry.buffer.data(), key.len);
  MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Drain());
  total_cost_ += cost;
  entry.dirty = false;
  stats_.writebacks++;
  writebacks_->Increment();
  return OkStatus();
}

Status SwizzleCache::EvictUntilFits(std::uint64_t incoming) {
  if (incoming > capacity_) {
    return InvalidArgument("range larger than the cache");
  }
  while (stats_.resident_bytes + incoming > capacity_) {
    if (lru_.empty()) {
      return ResourceExhausted("swizzle cache full of pinned entries");
    }
    const Key victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    MEMFLOW_CHECK(it != entries_.end() && it->second.pins == 0);
    if (it->second.dirty) {
      MEMFLOW_RETURN_IF_ERROR(WriteBack(victim, it->second));
    }
    stats_.resident_bytes -= victim.len;
    stats_.evictions++;
    evictions_->Increment();
    resident_bytes_->Set(static_cast<double>(stats_.resident_bytes));
    entries_.erase(it);
  }
  return OkStatus();
}

Result<void*> SwizzleCache::PinRange(RegionId region, std::uint64_t offset,
                                     std::uint64_t len) {
  if (len == 0) {
    return InvalidArgument("empty range");
  }
  const Key key{region.value, offset, len};
  // Classify every pin (hits and misses) so the stride state stays
  // continuous; only hits are reported here — misses are observed by the
  // RegionManager tap when the fill drains below.
  const telemetry::AccessPatternKind pattern = pin_pattern_.Classify(offset, len);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry& entry = it->second;
    if (entry.pins == 0) {
      lru_.erase(entry.lru);  // no longer evictable
    }
    entry.pins++;
    stats_.hits++;
    hits_->Increment();
    regions_->NoteCachedAccess(region, offset, len, pattern);
    return static_cast<void*>(entry.buffer.data());
  }

  MEMFLOW_RETURN_IF_ERROR(EvictUntilFits(len));

  // Fetch through the region's (possibly async-only) interface.
  Entry entry;
  entry.buffer.resize(len);
  {
    MEMFLOW_ASSIGN_OR_RETURN(AsyncAccessor acc, regions_->OpenAsync(region, who_, observer_));
    acc.EnqueueRead(offset, entry.buffer.data(), len);
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Drain());
    total_cost_ += cost;
  }
  entry.pins = 1;
  stats_.misses++;
  misses_->Increment();
  stats_.resident_bytes += len;
  resident_bytes_->Set(static_cast<double>(stats_.resident_bytes));
  auto [pos, inserted] = entries_.emplace(key, std::move(entry));
  MEMFLOW_CHECK(inserted);
  return static_cast<void*>(pos->second.buffer.data());
}

Status SwizzleCache::UnpinRange(RegionId region, std::uint64_t offset, std::uint64_t len,
                                bool dirty) {
  const Key key{region.value, offset, len};
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.pins == 0) {
    return FailedPrecondition("range is not pinned");
  }
  Entry& entry = it->second;
  entry.pins--;
  entry.dirty = entry.dirty || dirty;
  if (entry.pins == 0) {
    lru_.push_front(key);
    entry.lru = lru_.begin();
  }
  return OkStatus();
}

Status SwizzleCache::Flush() {
  for (auto& [key, entry] : entries_) {
    if (entry.dirty) {
      MEMFLOW_RETURN_IF_ERROR(WriteBack(key, entry));
    }
  }
  return OkStatus();
}

}  // namespace memflow::region
