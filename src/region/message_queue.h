// Copyright (c) memflow authors. MIT license.
//
// Message passing over shared memory (paper §2.1: "the performance-critical
// inter-task communication is being implemented via message-passing over
// shared memory", citing Naiad). A MessageQueue is a fixed-capacity ring of
// fixed-size messages laid out inside a Memory Region; producer and consumer
// are different principals *sharing* the region, and every head/tail/slot
// access goes through the region's synchronous interface, so queue traffic is
// charged like any other memory — and the queue simply cannot be created on
// memory that is not coherently, synchronously addressable by its users.
//
// Region layout:
//   [0)   Header { magic, message_size, capacity, head, tail }
//   [64)  capacity x message_size slot bytes
//
// head == tail  -> empty; (tail + 1) % capacity == head -> full (one slot
// sacrificed, the classic ring discipline).

#ifndef MEMFLOW_REGION_MESSAGE_QUEUE_H_
#define MEMFLOW_REGION_MESSAGE_QUEUE_H_

#include <cstdint>

#include "region/region_manager.h"

namespace memflow::region {

class MessageQueue {
 public:
  // Initializes a queue in `region` (which must be coherently and
  // synchronously addressable from `observer`). Capacity is derived from the
  // region size; fails if fewer than 2 slots fit.
  static Result<MessageQueue> Create(RegionManager& regions, RegionId region,
                                     const Principal& who, simhw::ComputeDeviceId observer,
                                     std::uint64_t message_size);

  // Attaches to an existing queue (validates the header). The caller must
  // own or share the region.
  static Result<MessageQueue> Open(RegionManager& regions, RegionId region,
                                   const Principal& who, simhw::ComputeDeviceId observer);

  // Appends one message of message_size() bytes. kResourceExhausted when
  // full. Returns the simulated cost of the enqueue (header + slot traffic).
  Result<SimDuration> Push(const void* message);

  // Removes the oldest message into `out`. kNotFound when empty.
  Result<SimDuration> Pop(void* out);

  // Current number of queued messages (costs a header read).
  Result<std::uint64_t> Size();

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t message_size() const { return message_size_; }

 private:
  struct Header {
    std::uint64_t magic;
    std::uint64_t message_size;
    std::uint64_t capacity;
    std::uint64_t head;  // next slot to pop
    std::uint64_t tail;  // next slot to push
  };
  static constexpr std::uint64_t kMagic = 0x6d666c6f77715f31ULL;  // "mflowq_1"
  static constexpr std::uint64_t kSlotsOffset = 64;

  struct Instruments {
    telemetry::Counter* pushes = nullptr;
    telemetry::Counter* pops = nullptr;
    telemetry::Counter* full_stalls = nullptr;
    telemetry::Counter* empty_stalls = nullptr;
    telemetry::Gauge* depth = nullptr;
  };
  static Instruments ResolveInstruments(RegionManager& regions, RegionId region);

  MessageQueue(SyncAccessor accessor, std::uint64_t message_size, std::uint64_t capacity,
               Instruments instruments)
      : accessor_(std::move(accessor)),
        message_size_(message_size),
        capacity_(capacity),
        instruments_(instruments) {}

  std::uint64_t SlotOffset(std::uint64_t index) const {
    return kSlotsOffset + index * message_size_;
  }

  SyncAccessor accessor_;
  std::uint64_t message_size_;
  std::uint64_t capacity_;
  Instruments instruments_;
};

}  // namespace memflow::region

#endif  // MEMFLOW_REGION_MESSAGE_QUEUE_H_
