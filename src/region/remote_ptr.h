// Copyright (c) memflow authors. MIT license.
//
// Remotable, taggable pointers (§3, Challenges 1–3): the paper points at
// pointer tagging for hotness tracking and pointer swizzling for local/remote
// object references (AIFM, LeanStore, TPP, Carbink). RemotePtr<T> packs a
// region reference, an element offset, and a saturating hotness counter into
// one 64-bit word; a swizzled pointer instead carries a raw host address for
// direct dereference once the runtime has pinned the object locally.
//
// Layout (unswizzled, bit 63 = 0):
//   [63]    0
//   [62:48] 15-bit saturating hotness counter
//   [47:24] 24-bit region id
//   [23:0]  24-bit element offset (units of T)
//
// Layout (swizzled, bit 63 = 1):
//   [63]    1
//   [62:48] 15-bit saturating hotness counter
//   [47:0]  48-bit canonical host address
//
// The hotness tag rides in the pointer itself so dereference sites can update
// it without touching any side table — exactly the trick used to drive
// tiering decisions cheaply.

#ifndef MEMFLOW_REGION_REMOTE_PTR_H_
#define MEMFLOW_REGION_REMOTE_PTR_H_

#include <cstdint>

#include "common/assert.h"
#include "region/region.h"

namespace memflow::region {

inline constexpr std::uint64_t kRemotePtrMaxRegion = (1ULL << 24) - 1;
inline constexpr std::uint64_t kRemotePtrMaxOffset = (1ULL << 24) - 1;
inline constexpr std::uint16_t kRemotePtrMaxHotness = (1U << 15) - 1;

template <typename T>
class RemotePtr {
 public:
  RemotePtr() = default;

  static RemotePtr Make(RegionId region, std::uint64_t element_offset) {
    MEMFLOW_CHECK(region.value <= kRemotePtrMaxRegion);
    MEMFLOW_CHECK(element_offset <= kRemotePtrMaxOffset);
    RemotePtr p;
    p.bits_ = (static_cast<std::uint64_t>(region.value) << 24) | element_offset;
    return p;
  }

  bool swizzled() const { return (bits_ >> 63) != 0; }

  RegionId region() const {
    MEMFLOW_DCHECK(!swizzled());
    return RegionId(static_cast<std::uint32_t>((bits_ >> 24) & kRemotePtrMaxRegion));
  }

  std::uint64_t offset() const {
    MEMFLOW_DCHECK(!swizzled());
    return bits_ & kRemotePtrMaxOffset;
  }

  std::uint64_t byte_offset() const { return offset() * sizeof(T); }

  // --- hotness tag ------------------------------------------------------------

  std::uint16_t hotness() const { return static_cast<std::uint16_t>((bits_ >> 48) & 0x7fff); }

  // Saturating increment; call on every dereference.
  void Touch() {
    const std::uint16_t h = hotness();
    if (h < kRemotePtrMaxHotness) {
      SetHotness(static_cast<std::uint16_t>(h + 1));
    }
  }

  // Halve the counter (epoch decay).
  void Cool() { SetHotness(static_cast<std::uint16_t>(hotness() / 2)); }

  // --- swizzling --------------------------------------------------------------

  // Replaces the remote reference with a raw local address (object was pinned
  // in local memory). The hotness tag is preserved.
  void Swizzle(T* local) {
    const auto addr = reinterpret_cast<std::uint64_t>(local);
    MEMFLOW_CHECK_MSG((addr >> 48) == 0, "non-canonical address");
    bits_ = (1ULL << 63) | (static_cast<std::uint64_t>(hotness()) << 48) | addr;
  }

  // Restores the remote form after the object was unpinned/evicted.
  void Unswizzle(RegionId region, std::uint64_t element_offset) {
    const std::uint16_t h = hotness();
    *this = Make(region, element_offset);
    SetHotness(h);
  }

  T* raw() const {
    MEMFLOW_DCHECK(swizzled());
    return reinterpret_cast<T*>(bits_ & ((1ULL << 48) - 1));
  }

  T& operator*() const { return *raw(); }
  T* operator->() const { return raw(); }

  std::uint64_t bits() const { return bits_; }

  friend bool operator==(const RemotePtr&, const RemotePtr&) = default;

 private:
  void SetHotness(std::uint16_t h) {
    bits_ = (bits_ & ~(0x7fffULL << 48)) | (static_cast<std::uint64_t>(h & 0x7fff) << 48);
  }

  std::uint64_t bits_ = 0;
};

}  // namespace memflow::region

#endif  // MEMFLOW_REGION_REMOTE_PTR_H_
