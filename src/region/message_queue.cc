// Copyright (c) memflow authors. MIT license.

#include "region/message_queue.h"

namespace memflow::region {

MessageQueue::Instruments MessageQueue::ResolveInstruments(RegionManager& regions,
                                                           RegionId region) {
  telemetry::Registry& reg = *regions.registry();
  const telemetry::Labels region_label = {{"region", std::to_string(region.value)}};
  Instruments out;
  out.pushes = reg.GetCounter("message_queue_ops_total", "Message queue operations",
                               {{"op", "push"}});
  out.pops = reg.GetCounter("message_queue_ops_total", "Message queue operations",
                             {{"op", "pop"}});
  out.full_stalls = reg.GetCounter("message_queue_stalls_total",
                                    "Operations refused on a full/empty queue",
                                    {{"kind", "full"}});
  out.empty_stalls = reg.GetCounter("message_queue_stalls_total",
                                     "Operations refused on a full/empty queue",
                                     {{"kind", "empty"}});
  out.depth = reg.GetGauge("message_queue_depth", "Messages currently queued",
                            region_label);
  return out;
}

Result<MessageQueue> MessageQueue::Create(RegionManager& regions, RegionId region,
                                          const Principal& who,
                                          simhw::ComputeDeviceId observer,
                                          std::uint64_t message_size) {
  if (message_size == 0) {
    return InvalidArgument("zero message size");
  }
  MEMFLOW_ASSIGN_OR_RETURN(RegionInfo info, regions.Info(region));
  if (info.size < kSlotsOffset + 2 * message_size) {
    return InvalidArgument("region too small for a 2-slot queue");
  }
  // OpenSync enforces the coherent/sync addressability requirement: a queue
  // on far memory is refused here, exactly as §2.2(2) demands for shared
  // mutable state.
  MEMFLOW_ASSIGN_OR_RETURN(SyncAccessor acc, regions.OpenSync(region, who, observer));

  const std::uint64_t capacity = (info.size - kSlotsOffset) / message_size;
  Header header{kMagic, message_size, capacity, 0, 0};
  MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Write(0, &header, sizeof(header)));
  (void)cost;  // creation cost is not attributed to either endpoint
  return MessageQueue(std::move(acc), message_size, capacity,
                      ResolveInstruments(regions, region));
}

Result<MessageQueue> MessageQueue::Open(RegionManager& regions, RegionId region,
                                        const Principal& who,
                                        simhw::ComputeDeviceId observer) {
  MEMFLOW_ASSIGN_OR_RETURN(SyncAccessor acc, regions.OpenSync(region, who, observer));
  Header header{};
  MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Read(0, &header, sizeof(header)));
  (void)cost;
  if (header.magic != kMagic) {
    return FailedPrecondition("region does not hold a message queue");
  }
  return MessageQueue(std::move(acc), header.message_size, header.capacity,
                      ResolveInstruments(regions, region));
}

Result<SimDuration> MessageQueue::Push(const void* message) {
  Header header{};
  MEMFLOW_ASSIGN_OR_RETURN(SimDuration c1, accessor_.Read(0, &header, sizeof(header)));
  if ((header.tail + 1) % header.capacity == header.head) {
    instruments_.full_stalls->Increment();
    return ResourceExhausted("queue full");
  }
  MEMFLOW_ASSIGN_OR_RETURN(
      SimDuration c2, accessor_.Write(SlotOffset(header.tail), message, message_size_));
  header.tail = (header.tail + 1) % header.capacity;
  // Publish the new tail (a release store in real hardware).
  MEMFLOW_ASSIGN_OR_RETURN(
      SimDuration c3,
      accessor_.Write(offsetof(Header, tail), &header.tail, sizeof(header.tail)));
  instruments_.pushes->Increment();
  instruments_.depth->Set(static_cast<double>(
      (header.tail + header.capacity - header.head) % header.capacity));
  return c1 + c2 + c3;
}

Result<SimDuration> MessageQueue::Pop(void* out) {
  Header header{};
  MEMFLOW_ASSIGN_OR_RETURN(SimDuration c1, accessor_.Read(0, &header, sizeof(header)));
  if (header.head == header.tail) {
    instruments_.empty_stalls->Increment();
    return NotFound("queue empty");
  }
  MEMFLOW_ASSIGN_OR_RETURN(SimDuration c2,
                           accessor_.Read(SlotOffset(header.head), out, message_size_));
  header.head = (header.head + 1) % header.capacity;
  MEMFLOW_ASSIGN_OR_RETURN(
      SimDuration c3,
      accessor_.Write(offsetof(Header, head), &header.head, sizeof(header.head)));
  instruments_.pops->Increment();
  instruments_.depth->Set(static_cast<double>(
      (header.tail + header.capacity - header.head) % header.capacity));
  return c1 + c2 + c3;
}

Result<std::uint64_t> MessageQueue::Size() {
  Header header{};
  MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, accessor_.Read(0, &header, sizeof(header)));
  (void)cost;
  return (header.tail + header.capacity - header.head) % header.capacity;
}

}  // namespace memflow::region
