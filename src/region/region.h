// Copyright (c) memflow authors. MIT license.
//
// Core types of the Memory Region abstraction (§2.2): region ids, principals
// (who owns/accesses a region), and the ownership state machine.
//
// A Memory Region is a logical view on a physical device, declared and
// identified by its properties, not by its location. Every region is either
// exclusively owned by one principal (task) — ownership transferable like C++
// move semantics — or shared among several (which raises the coherence
// requirements, §2.2(2)).

#ifndef MEMFLOW_REGION_REGION_H_
#define MEMFLOW_REGION_REGION_H_

#include <cstdint>
#include <string_view>

#include "region/properties.h"
#include "simhw/ids.h"

namespace memflow::region {

struct RegionTag {};
using RegionId = simhw::StrongId<RegionTag>;

// Who is acting: `job` is the confidentiality/accounting domain, `actor`
// identifies the task (or runtime component) inside it. Principals are plain
// values; the runtime constructs them for each task instance.
struct Principal {
  std::uint32_t job = 0;
  std::uint64_t actor = 0;

  friend constexpr bool operator==(const Principal&, const Principal&) = default;
};

// The runtime itself (allocating on behalf of no job).
inline constexpr Principal kRuntimePrincipal{0xffffffffu, 0};

enum class OwnershipState : std::uint8_t {
  kExclusive,  // one owner; relaxed ordering permitted (§2.2(2) first bullet)
  kShared,     // multiple concurrent owners; coherence required
  kFreed,      // terminal
};

std::string_view OwnershipStateName(OwnershipState s);

// Introspection snapshot for reports and tests.
struct RegionInfo {
  RegionId id;
  std::uint64_t size = 0;
  Properties props;
  simhw::MemoryDeviceId device;
  OwnershipState state = OwnershipState::kFreed;
  Principal owner;           // meaningful when exclusive
  int shared_refs = 0;       // meaningful when shared
  std::uint64_t hotness = 0; // decayed access counter, read from the access
                             // profiler (the single hotness source, §16)
  bool lost = false;         // volatile backing lost to a fault
};

}  // namespace memflow::region

#endif  // MEMFLOW_REGION_REGION_H_
