// Copyright (c) memflow authors. MIT license.
//
// Access interfaces (§2.2(3)): Memory Regions expose different interfaces
// depending on distance. SyncAccessor models direct loads/stores against near
// memory; AsyncAccessor models a queued interface that overlaps transfers and
// pays the access latency once per pipeline batch instead of once per
// operation — the mechanism that makes far memory usable.
//
// Accessors are thin, revalidating handles: every operation goes back through
// the RegionManager, so ownership transfers and frees are observed
// immediately (no stale capability can outlive a transfer).

#ifndef MEMFLOW_REGION_ACCESSOR_H_
#define MEMFLOW_REGION_ACCESSOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "region/region.h"
#include "simhw/cluster.h"
#include "telemetry/memaccess.h"

namespace memflow::region {

class RegionManager;

// Synchronous load/store interface. Each call returns the simulated cost of
// that access; sequential runs are detected (next offset == previous end) and
// charged at streaming rates.
class SyncAccessor {
 public:
  Result<SimDuration> Read(std::uint64_t offset, void* dst, std::uint64_t size);
  Result<SimDuration> Write(std::uint64_t offset, const void* src, std::uint64_t size);

  // Cross-check against the static ownership analysis (analysis::Verify):
  // every subsequent access asserts the region is in `state`, so a divergence
  // between the analyzer's prediction and the executor's bookkeeping surfaces
  // as an error instead of silent misbehavior.
  void ExpectOwnership(OwnershipState state) { expected_state_ = state; }

  // Typed element access, index in units of T.
  template <typename T>
  Result<SimDuration> Load(std::uint64_t index, T& out) {
    return Read(index * sizeof(T), &out, sizeof(T));
  }
  template <typename T>
  Result<SimDuration> Store(std::uint64_t index, const T& value) {
    return Write(index * sizeof(T), &value, sizeof(T));
  }

  const simhw::AccessView& view() const { return view_; }
  std::uint64_t size() const { return size_; }

 private:
  friend class RegionManager;
  SyncAccessor(RegionManager* mgr, RegionId id, Principal who, simhw::AccessView view,
               std::uint64_t size)
      : mgr_(mgr), id_(id), who_(who), view_(view), size_(size) {}

  RegionManager* mgr_;
  RegionId id_;
  Principal who_;
  simhw::AccessView view_;
  std::uint64_t size_;
  std::optional<OwnershipState> expected_state_;
  // Stride detectors, one per direction. kSequential doubles as the old
  // "continuation" signal (prefetcher hides the access latency); all verdicts
  // also feed the access profiler's pattern/prefetch counters.
  telemetry::PatternTracker read_pattern_;
  telemetry::PatternTracker write_pattern_;
};

// Asynchronous queued interface. Operations are enqueued and executed at
// Drain(); the batch pays the path+media latency once per `queue_depth`
// in-flight window rather than per operation. Data still really moves at
// enqueue order during Drain().
class AsyncAccessor {
 public:
  static constexpr int kDefaultQueueDepth = 16;

  void EnqueueRead(std::uint64_t offset, void* dst, std::uint64_t size);
  void EnqueueWrite(std::uint64_t offset, const void* src, std::uint64_t size);

  // Executes every queued operation; returns the total simulated time for the
  // pipelined batch. The queue is empty afterwards.
  Result<SimDuration> Drain();

  // See SyncAccessor::ExpectOwnership; checked once per Drain().
  void ExpectOwnership(OwnershipState state) { expected_state_ = state; }

  std::size_t queued() const { return ops_.size(); }
  const simhw::AccessView& view() const { return view_; }
  std::uint64_t size() const { return size_; }

  void set_queue_depth(int depth);

 private:
  friend class RegionManager;
  AsyncAccessor(RegionManager* mgr, RegionId id, Principal who, simhw::AccessView view,
                std::uint64_t size)
      : mgr_(mgr), id_(id), who_(who), view_(view), size_(size) {}

  struct Op {
    bool is_write;
    std::uint64_t offset;
    void* dst;          // reads
    const void* src;    // writes
    std::uint64_t size;
  };

  RegionManager* mgr_;
  RegionId id_;
  Principal who_;
  simhw::AccessView view_;
  std::uint64_t size_;
  std::optional<OwnershipState> expected_state_;
  int queue_depth_ = kDefaultQueueDepth;
  std::vector<Op> ops_;
  // Stride detectors persist across Drain() calls: a region streamed in
  // several batches still classifies as sequential.
  telemetry::PatternTracker read_pattern_;
  telemetry::PatternTracker write_pattern_;
};

}  // namespace memflow::region

#endif  // MEMFLOW_REGION_ACCESSOR_H_
