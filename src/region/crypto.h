// Copyright (c) memflow authors. MIT license.
//
// At-rest scrambling for confidential regions. This is a *position-keyed
// keystream cipher* (XOR with a SplitMix64-derived stream), standing in for
// AES-XTS: it has the property the enforcement logic needs — the same
// (key, absolute offset) always produces the same keystream, so random-access
// reads/writes of arbitrary unaligned ranges round-trip — while making raw
// device bytes unintelligible without the key. See DESIGN.md §8: the cipher
// is a stand-in; the enforcement (who holds keys, what is scrambled when) is
// the contribution under test.

#ifndef MEMFLOW_REGION_CRYPTO_H_
#define MEMFLOW_REGION_CRYPTO_H_

#include <cstddef>
#include <cstdint>

namespace memflow::region {

// XORs buf[0..len) with the keystream for positions [offset, offset+len).
// Involutive: applying twice with the same key/offset restores the input.
void ApplyKeystream(std::uint64_t key, std::uint64_t offset, void* buf, std::size_t len);

}  // namespace memflow::region

#endif  // MEMFLOW_REGION_CRYPTO_H_
