// Copyright (c) memflow authors. MIT license.
//
// Hotness-driven tiering daemon. The paper's RTS must "optimize the placement
// of memory regions" using hotness tracked via pointer tagging (§3,
// Challenges 1–3, citing TPP/LeanStore/AIFM). Each epoch the daemon ranks
// live regions by hotness density, promotes hot regions toward the fastest
// satisfying device, demotes cold regions off overfull fast devices, and
// decays the counters.

#ifndef MEMFLOW_REGION_TIERING_H_
#define MEMFLOW_REGION_TIERING_H_

#include <cstdint>
#include <vector>

#include "region/region_manager.h"

namespace memflow::region {

struct TieringConfig {
  // Regions with hotness density (hotness per KiB) below this are demotion
  // candidates; above `promote_density` they are promotion candidates.
  double promote_density = 4.0;
  double demote_density = 0.5;
  // Fast devices above this utilization shed cold regions.
  double high_watermark = 0.90;
  // Per-epoch migration budget, to bound interference with foreground work.
  std::uint64_t epoch_budget_bytes = 64 * kMiB;
  // Multiplicative hotness decay applied at the end of each epoch.
  double decay = 0.5;
};

struct TieringReport {
  int promoted = 0;
  int demoted = 0;
  std::uint64_t bytes_moved = 0;
  SimDuration migration_cost;
};

class TieringDaemon {
 public:
  // `observer` defines the point of view used to rank device speed (for a
  // single-host deployment, the host CPU).
  TieringDaemon(RegionManager& manager, simhw::ComputeDeviceId observer,
                TieringConfig config = {});

  // Runs one promotion/demotion epoch.
  TieringReport RunEpoch();

 private:
  // Devices satisfying `props` from the observer, fastest first.
  std::vector<simhw::MemoryDeviceId> RankedTiers(const Properties& props) const;

  RegionManager* manager_;
  simhw::ComputeDeviceId observer_;
  TieringConfig config_;
  telemetry::Counter* promotions_;
  telemetry::Counter* demotions_;
  telemetry::Counter* moved_bytes_;
  telemetry::Counter* epochs_;
};

}  // namespace memflow::region

#endif  // MEMFLOW_REGION_TIERING_H_
