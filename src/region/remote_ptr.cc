// Copyright (c) memflow authors. MIT license.
//
// RemotePtr is header-only; this translation unit pins the template's
// static_asserts into the library once.

#include "region/remote_ptr.h"

namespace memflow::region {

static_assert(sizeof(RemotePtr<int>) == sizeof(std::uint64_t),
              "RemotePtr must stay one machine word — that is the point");

}  // namespace memflow::region
