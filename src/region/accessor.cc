// Copyright (c) memflow authors. MIT license.

#include "region/accessor.h"

#include <algorithm>

#include "region/region_manager.h"

namespace memflow::region {

Result<SimDuration> SyncAccessor::Read(std::uint64_t offset, void* dst, std::uint64_t size) {
  if (expected_state_.has_value()) {
    MEMFLOW_RETURN_IF_ERROR(mgr_->CheckOwnership(id_, *expected_state_));
  }
  // A single Read is one contiguous burst: one access latency plus the
  // bandwidth-bound transfer. If the call continues exactly where the last
  // one ended, the (modeled) prefetcher hides the latency entirely.
  const telemetry::AccessPatternKind pattern = read_pattern_.Classify(offset, size);
  const bool continuation = pattern == telemetry::AccessPatternKind::kSequential;
  return mgr_->DoRead(id_, who_, offset, dst, size, view_, /*sequential=*/true,
                      /*charge_latency=*/!continuation, pattern);
}

Result<SimDuration> SyncAccessor::Write(std::uint64_t offset, const void* src,
                                        std::uint64_t size) {
  if (expected_state_.has_value()) {
    MEMFLOW_RETURN_IF_ERROR(mgr_->CheckOwnership(id_, *expected_state_));
  }
  const telemetry::AccessPatternKind pattern = write_pattern_.Classify(offset, size);
  const bool continuation = pattern == telemetry::AccessPatternKind::kSequential;
  return mgr_->DoWrite(id_, who_, offset, src, size, view_, /*sequential=*/true,
                       /*charge_latency=*/!continuation, pattern);
}

void AsyncAccessor::EnqueueRead(std::uint64_t offset, void* dst, std::uint64_t size) {
  ops_.push_back(Op{false, offset, dst, nullptr, size});
}

void AsyncAccessor::EnqueueWrite(std::uint64_t offset, const void* src, std::uint64_t size) {
  ops_.push_back(Op{true, offset, nullptr, src, size});
}

void AsyncAccessor::set_queue_depth(int depth) {
  MEMFLOW_CHECK(depth >= 1);
  queue_depth_ = depth;
}

Result<SimDuration> AsyncAccessor::Drain() {
  if (expected_state_.has_value() && !ops_.empty()) {
    MEMFLOW_RETURN_IF_ERROR(mgr_->CheckOwnership(id_, *expected_state_));
  }
  // Pipelined batch model (§2.2(3)): each in-flight window of `queue_depth_`
  // operations overlaps its access latencies; transfers serialize on the
  // path's bandwidth. Total = (#windows x latency) + sum of transfer times.
  SimDuration transfer_total{};
  SimDuration max_latency{};
  const std::size_t n = ops_.size();
  for (const Op& op : ops_) {
    Result<SimDuration> cost = InvalidArgument("unreached");
    if (op.is_write) {
      cost = mgr_->DoWrite(id_, who_, op.offset, op.src, op.size, view_,
                           /*sequential=*/true, /*charge_latency=*/false,
                           write_pattern_.Classify(op.offset, op.size));
      max_latency = std::max(max_latency, view_.write_latency);
    } else {
      cost = mgr_->DoRead(id_, who_, op.offset, op.dst, op.size, view_,
                          /*sequential=*/true, /*charge_latency=*/false,
                          read_pattern_.Classify(op.offset, op.size));
      max_latency = std::max(max_latency, view_.read_latency);
    }
    if (!cost.ok()) {
      ops_.clear();
      return cost.status();
    }
    transfer_total += *cost;
  }
  ops_.clear();
  if (n == 0) {
    return SimDuration{};
  }
  const auto windows = static_cast<std::int64_t>(
      (n + static_cast<std::size_t>(queue_depth_) - 1) / static_cast<std::size_t>(queue_depth_));
  return transfer_total + SimDuration::Nanos(windows * max_latency.ns);
}

}  // namespace memflow::region
