// Copyright (c) memflow authors. MIT license.
//
// Declarative memory properties (§2.1 "Requesting properties"). Applications
// never name a physical device; they state *requirements* — latency class,
// bandwidth class, persistence, coherence, synchronous addressability,
// confidentiality — and the runtime maps the request onto whatever device
// satisfies them best *from the requesting compute device's point of view*.
//
// The named bundles of Table 2 (Private Scratch, Global State, Global
// Scratch) are provided as constructors.

#ifndef MEMFLOW_REGION_PROPERTIES_H_
#define MEMFLOW_REGION_PROPERTIES_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/units.h"
#include "simhw/cluster.h"

namespace memflow::region {

// Upper bound on acceptable access latency, observer-relative.
enum class LatencyClass : std::uint8_t {
  kAny = 0,   // no requirement
  kHigh,      // <= 200 us  (storage-class acceptable)
  kMedium,    // <= 2 us    (far memory acceptable)
  kLow,       // <= 300 ns  (local-memory class)
};
inline constexpr int kNumLatencyClasses = 4;

// Lower bound on acceptable sustained bandwidth, observer-relative.
enum class BandwidthClass : std::uint8_t {
  kAny = 0,   // no requirement
  kLow,       // >= 1 GB/s
  kMedium,    // >= 20 GB/s
  kHigh,      // >= 80 GB/s
};

std::string_view LatencyClassName(LatencyClass c);
std::string_view BandwidthClassName(BandwidthClass c);

SimDuration LatencyCeiling(LatencyClass c);
double BandwidthFloor(BandwidthClass c);

// A declarative memory request. All fields are *requirements*: false/kAny
// means "don't care", never "must not".
struct Properties {
  LatencyClass latency = LatencyClass::kAny;
  BandwidthClass bandwidth = BandwidthClass::kAny;
  bool persistent = false;    // contents must survive crashes
  bool coherent = false;      // hardware cache coherence from the observer
  bool sync = false;          // synchronous load/store interface required
  bool confidential = false;  // encrypted at rest, isolated to the owning job

  // Named bundles from Table 2 of the paper.
  static Properties PrivateScratch() {
    Properties p;
    p.latency = LatencyClass::kLow;
    p.sync = true;
    // noncoherent: coherence not required — private to one thread.
    return p;
  }

  static Properties GlobalState() {
    Properties p;
    p.coherent = true;
    p.sync = true;
    return p;
  }

  static Properties GlobalScratch() {
    Properties p;
    p.coherent = true;  // shared between tasks
    p.sync = false;     // async interface: callers must not block on far loads
    return p;
  }

  std::string ToString() const;

  friend bool operator==(const Properties&, const Properties&) = default;
};

// Does this observer-relative view satisfy the requirements?
bool Satisfies(const simhw::AccessView& view, const Properties& props);

// Why the view fails the requirements: the first violated property, as a
// human-readable phrase ("requires sync addressability", "read latency 1200ns
// exceeds low ceiling 300ns"). Empty string iff Satisfies() is true. Used by
// the placement explainer to name losers' reasons.
std::string SatisfiesDetail(const simhw::AccessView& view, const Properties& props);

// Declared access pattern used by the placement cost model: lets the runtime
// estimate how expensive the region will be to use on each candidate device.
struct AccessHint {
  double sequential_fraction = 1.0;  // 1.0 = pure streaming, 0.0 = pure random
  double read_fraction = 0.7;        // share of accessed bytes that are reads
  double reuse_factor = 1.0;         // how many times the region is traversed
};

// Expected simulated cost of using a region of `size` bytes through `view`
// under `hint`. This is the quantity placement minimizes.
SimDuration ExpectedUseCost(const simhw::AccessView& view, std::uint64_t size,
                            const AccessHint& hint);

}  // namespace memflow::region

#endif  // MEMFLOW_REGION_PROPERTIES_H_
