// Copyright (c) memflow authors. MIT license.
//
// Fault-tolerant far-memory object store in the style of Carbink (paper §3,
// Challenge 8). Objects are packed into fixed-size *spans*; spans are made
// durable by one of three redundancy schemes:
//
//   kNone         — single copy (the baseline that loses data),
//   kReplication  — R full copies of every span on distinct memory nodes,
//   kErasureCoding — k sealed spans form a *spanset* with m Reed–Solomon
//                    parity spans, all k+m on distinct nodes (Carbink).
//
// Deleting objects leaves dead bytes inside sealed spans; Compact() rewrites
// spansets whose dead fraction crosses a threshold — Carbink's compaction.
// Parity computation can be "offloaded" (charged off the client's critical
// path), modeling Carbink's offloadable parity calculations.
//
// All span data lives in memflow regions on the provided devices, so node
// crashes injected through simhw take real bytes with them; recovery
// reconstructs real contents and the tests verify them byte-for-byte.

#ifndef MEMFLOW_FT_SPAN_STORE_H_
#define MEMFLOW_FT_SPAN_STORE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "ft/reed_solomon.h"
#include "region/region_manager.h"

namespace memflow::ft {

enum class Redundancy { kNone, kReplication, kErasureCoding };

std::string_view RedundancyName(Redundancy r);

struct StoreOptions {
  Redundancy scheme = Redundancy::kErasureCoding;
  int replicas = 3;       // kReplication
  int rs_data = 8;        // k (kErasureCoding)
  int rs_parity = 3;      // m
  std::uint64_t span_bytes = 64 * kKiB;
  // Carbink: parity is computed near memory, off the client's critical path.
  bool offload_parity = true;
  // Compact() rewrites spansets whose dead fraction exceeds this.
  double compaction_threshold = 0.5;
};

struct ObjectTag {};
using ObjectId = simhw::StrongId<ObjectTag>;

struct StoreFootprint {
  std::uint64_t user_bytes = 0;  // live object payload
  std::uint64_t raw_bytes = 0;   // bytes allocated on devices
  double overhead() const {
    return user_bytes == 0 ? 0.0
                           : static_cast<double>(raw_bytes) / static_cast<double>(user_bytes);
  }
};

struct RecoveryReport {
  int spans_repaired = 0;
  int objects_lost = 0;
  std::uint64_t bytes_rewritten = 0;
  SimDuration cost;
};

struct CompactionReport {
  int units_rewritten = 0;  // spansets (EC) or spans (replication/none)
  std::uint64_t bytes_reclaimed = 0;
  std::uint64_t bytes_moved = 0;
  SimDuration cost;
};

class SpanStore {
 public:
  // `devices` are the far-memory nodes (one device per node). `observer` is
  // the compute device running the store's client, used for access costing
  // and for (non-offloaded) parity computation.
  SpanStore(region::RegionManager& regions, std::vector<simhw::MemoryDeviceId> devices,
            simhw::ComputeDeviceId observer, StoreOptions options);

  SpanStore(const SpanStore&) = delete;
  SpanStore& operator=(const SpanStore&) = delete;

  ~SpanStore();

  // Stores an object; data may span multiple spans. The object becomes
  // durable at the next seal/Flush boundary (like Carbink's spansets).
  Result<ObjectId> Put(std::span<const std::uint8_t> data);

  // Reads an object back, reconstructing through parity if nodes failed.
  Status Get(ObjectId id, std::vector<std::uint8_t>& out);

  // Marks the object dead; its bytes are reclaimed by Compact().
  Status Delete(ObjectId id);

  // Seals the open span and flushes any pending spanset (with virtual zero
  // spans if fewer than k are pending).
  Status Flush();

  // Call after a memory device failed: re-protects every affected span by
  // re-replication or reconstruction onto surviving devices.
  Result<RecoveryReport> HandleDeviceFailure(simhw::MemoryDeviceId failed);

  // Rewrites spansets/spans whose dead fraction exceeds the threshold.
  Result<CompactionReport> Compact();

  StoreFootprint footprint() const;
  SimDuration total_cost() const { return total_cost_; }        // client path
  SimDuration background_cost() const { return background_cost_; }
  const StoreOptions& options() const { return options_; }

 private:
  struct Replica {
    region::RegionId region;
    simhw::MemoryDeviceId device;
  };
  struct LiveObject {
    ObjectId object;
    std::uint32_t span_offset = 0;
    std::uint32_t len = 0;
    std::uint32_t frag_index = 0;  // which fragment of the object this is
  };
  struct Span {
    std::vector<Replica> copies;        // materialized shards (empty while pending)
    int group = -1;                     // EC spanset index, -1 otherwise
    int slot = -1;                      // shard slot inside the group
    std::uint32_t live_bytes = 0;
    std::uint32_t dead_bytes = 0;
    std::vector<LiveObject> objects;
    bool dropped = false;               // freed by compaction
  };
  struct Group {
    std::vector<std::uint32_t> data_spans;  // <= k real spans (rest virtual zeros)
    std::vector<Replica> parity;            // m shards
    bool dropped = false;
  };
  struct Fragment {
    std::uint32_t span = 0;
    std::uint32_t offset = 0;
    std::uint32_t len = 0;
  };
  struct Object {
    std::uint64_t size = 0;
    std::vector<Fragment> frags;
    bool lost = false;
    bool deleted = false;
  };

  // Appends `data` into open/sealed spans, returning the fragments written.
  Result<std::vector<Fragment>> Append(ObjectId id, std::span<const std::uint8_t> data,
                                       std::uint32_t first_frag_index);

  Status SealOpenSpan();
  Status MaterializeSpan(std::uint32_t span_index, const std::vector<std::uint8_t>& payload);
  Status FlushPendingGroup();

  // Reads `len` bytes at `offset` of span `s` into `dst`, reconstructing if
  // the primary copy is unreachable. Adds cost to total_cost_.
  Status ReadSpanBytes(std::uint32_t s, std::uint32_t offset, std::uint32_t len,
                       std::uint8_t* dst);

  // Reads one full shard's worth of bytes for group reconstruction.
  Status ReadFullShard(const Replica& replica, std::vector<std::uint8_t>& out,
                       SimDuration& cost);

  Result<simhw::MemoryDeviceId> NextDevice(const std::vector<simhw::MemoryDeviceId>& exclude);
  bool ReplicaAlive(const Replica& r) const;

  Status WriteRegion(const Replica& replica, std::span<const std::uint8_t> payload,
                     SimDuration& cost);

  void ChargeParityCompute(std::uint64_t bytes);

  region::RegionManager* regions_;
  std::vector<simhw::MemoryDeviceId> devices_;
  simhw::ComputeDeviceId observer_;
  StoreOptions options_;
  ReedSolomon rs_;

  region::Principal self_{0xfffd0000u, 1};

  std::vector<Span> spans_;
  std::vector<Group> groups_;
  std::unordered_map<std::uint32_t, Object> objects_;
  std::uint32_t next_object_ = 1;

  // Open span being bump-filled, plus sealed-but-unflushed payloads.
  std::int64_t open_span_ = -1;  // index into spans_, -1 if none
  std::vector<std::uint8_t> staging_;
  std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> pending_payloads_;
  std::vector<std::uint32_t> pending_group_;  // sealed spans awaiting EC flush

  std::size_t rr_device_ = 0;  // round-robin cursor
  SimDuration total_cost_;
  SimDuration background_cost_;
};

}  // namespace memflow::ft

#endif  // MEMFLOW_FT_SPAN_STORE_H_
