// Copyright (c) memflow authors. MIT license.
//
// Systematic Reed–Solomon erasure coding over GF(2^8), the redundancy scheme
// behind Carbink-style fault-tolerant far memory (paper §3, Challenge 8:
// "erasure-coding, one-sided remote memory accesses and compaction, and
// off-loadable parity calculations").
//
// The encoding matrix is a Cauchy matrix, so *any* k of the k+m shards
// reconstruct the data (every square submatrix of a Cauchy matrix is
// invertible).

#ifndef MEMFLOW_FT_REED_SOLOMON_H_
#define MEMFLOW_FT_REED_SOLOMON_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace memflow::ft {

class ReedSolomon {
 public:
  // data_shards + parity_shards <= 256 (field size); both >= 1.
  ReedSolomon(int data_shards, int parity_shards);

  int data_shards() const { return k_; }
  int parity_shards() const { return m_; }
  int total_shards() const { return k_ + m_; }

  // Computes parity from data. All shards must have equal nonzero length;
  // parity buffers are overwritten.
  Status Encode(std::span<const std::span<const std::uint8_t>> data,
                std::span<const std::span<std::uint8_t>> parity) const;

  // Rebuilds every missing shard. `shards` holds k+m buffers of equal length
  // (missing ones sized but content irrelevant); present[i] says which are
  // valid. Fails if fewer than k are present.
  Status Reconstruct(std::vector<std::vector<std::uint8_t>>& shards,
                     const std::vector<bool>& present) const;

 private:
  // Row `r` of the parity-generation matrix (length k).
  const std::uint8_t* ParityRow(int r) const { return &matrix_[static_cast<std::size_t>(r) * k_]; }

  int k_;
  int m_;
  std::vector<std::uint8_t> matrix_;  // m x k Cauchy matrix
};

// Invert a dense n x n matrix over GF(2^8) in place via Gauss–Jordan.
// Returns kInvalidArgument if singular (cannot happen for Cauchy submatrices;
// exposed for tests).
Status GfInvertMatrix(std::vector<std::uint8_t>& matrix, int n);

}  // namespace memflow::ft

#endif  // MEMFLOW_FT_REED_SOLOMON_H_
