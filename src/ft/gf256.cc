// Copyright (c) memflow authors. MIT license.

#include "ft/gf256.h"

#include "common/assert.h"

namespace memflow::ft {

namespace {

struct Tables {
  std::uint8_t exp[512];  // doubled to skip the mod-255 in Mul
  std::uint8_t log[256];

  Tables() {
    // Generator 2 over polynomial 0x11d.
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) {
        x ^= 0x11d;
      }
    }
    for (int i = 255; i < 512; ++i) {
      exp[i] = exp[i - 255];
    }
    log[0] = 0;  // never consulted; GfMul short-circuits zero
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

std::uint8_t GfMul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  const Tables& t = T();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t GfDiv(std::uint8_t a, std::uint8_t b) {
  MEMFLOW_CHECK(b != 0);
  if (a == 0) {
    return 0;
  }
  const Tables& t = T();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

std::uint8_t GfInv(std::uint8_t a) {
  MEMFLOW_CHECK(a != 0);
  const Tables& t = T();
  return t.exp[255 - t.log[a]];
}

std::uint8_t GfExp(int power) {
  power %= 255;
  if (power < 0) {
    power += 255;
  }
  return T().exp[power];
}

void GfMulAccum(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t coeff,
                std::size_t n) {
  if (coeff == 0) {
    return;
  }
  if (coeff == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] ^= src[i];
    }
    return;
  }
  const Tables& t = T();
  const int lc = t.log[coeff];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) {
      dst[i] ^= t.exp[t.log[s] + lc];
    }
  }
}

void GfMulRow(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t coeff, std::size_t n) {
  if (coeff == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = 0;
    }
    return;
  }
  const Tables& t = T();
  const int lc = t.log[coeff];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    dst[i] = s == 0 ? 0 : t.exp[t.log[s] + lc];
  }
}

}  // namespace memflow::ft
