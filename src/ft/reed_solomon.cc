// Copyright (c) memflow authors. MIT license.

#include "ft/reed_solomon.h"

#include <cstring>

#include "ft/gf256.h"

namespace memflow::ft {

ReedSolomon::ReedSolomon(int data_shards, int parity_shards)
    : k_(data_shards), m_(parity_shards) {
  MEMFLOW_CHECK(k_ >= 1 && m_ >= 1 && k_ + m_ <= 256);
  // Cauchy matrix: rows indexed by x_r = r, columns by y_c = m + c, element
  // 1/(x_r ^ y_c). x and y sets are disjoint, so every entry is defined and
  // every square submatrix of [I; C] stays invertible.
  matrix_.resize(static_cast<std::size_t>(m_) * k_);
  for (int r = 0; r < m_; ++r) {
    for (int c = 0; c < k_; ++c) {
      const auto x = static_cast<std::uint8_t>(r);
      const auto y = static_cast<std::uint8_t>(m_ + c);
      matrix_[static_cast<std::size_t>(r) * k_ + c] = GfInv(GfAdd(x, y));
    }
  }
}

Status ReedSolomon::Encode(std::span<const std::span<const std::uint8_t>> data,
                           std::span<const std::span<std::uint8_t>> parity) const {
  if (static_cast<int>(data.size()) != k_ || static_cast<int>(parity.size()) != m_) {
    return InvalidArgument("shard count mismatch");
  }
  const std::size_t len = data[0].size();
  if (len == 0) {
    return InvalidArgument("empty shards");
  }
  for (const auto& d : data) {
    if (d.size() != len) {
      return InvalidArgument("data shards have unequal length");
    }
  }
  for (const auto& p : parity) {
    if (p.size() != len) {
      return InvalidArgument("parity shards have unequal length");
    }
  }
  for (int r = 0; r < m_; ++r) {
    const std::uint8_t* row = ParityRow(r);
    GfMulRow(parity[r].data(), data[0].data(), row[0], len);
    for (int c = 1; c < k_; ++c) {
      GfMulAccum(parity[r].data(), data[c].data(), row[c], len);
    }
  }
  return OkStatus();
}

Status GfInvertMatrix(std::vector<std::uint8_t>& matrix, int n) {
  // Augment with identity, run Gauss–Jordan, read the inverse back out.
  std::vector<std::uint8_t> work(static_cast<std::size_t>(n) * n * 2, 0);
  const int w = 2 * n;
  for (int r = 0; r < n; ++r) {
    std::memcpy(&work[static_cast<std::size_t>(r) * w], &matrix[static_cast<std::size_t>(r) * n],
                static_cast<std::size_t>(n));
    work[static_cast<std::size_t>(r) * w + n + r] = 1;
  }
  for (int col = 0; col < n; ++col) {
    // Pivot: find a row with a nonzero entry in this column.
    int pivot = -1;
    for (int r = col; r < n; ++r) {
      if (work[static_cast<std::size_t>(r) * w + col] != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) {
      return InvalidArgument("singular matrix");
    }
    if (pivot != col) {
      for (int c = 0; c < w; ++c) {
        std::swap(work[static_cast<std::size_t>(pivot) * w + c],
                  work[static_cast<std::size_t>(col) * w + c]);
      }
    }
    // Normalize the pivot row.
    const std::uint8_t inv = GfInv(work[static_cast<std::size_t>(col) * w + col]);
    GfMulRow(&work[static_cast<std::size_t>(col) * w], &work[static_cast<std::size_t>(col) * w],
             inv, static_cast<std::size_t>(w));
    // Eliminate the column from every other row.
    for (int r = 0; r < n; ++r) {
      if (r == col) {
        continue;
      }
      const std::uint8_t f = work[static_cast<std::size_t>(r) * w + col];
      if (f != 0) {
        GfMulAccum(&work[static_cast<std::size_t>(r) * w],
                   &work[static_cast<std::size_t>(col) * w], f, static_cast<std::size_t>(w));
      }
    }
  }
  for (int r = 0; r < n; ++r) {
    std::memcpy(&matrix[static_cast<std::size_t>(r) * n],
                &work[static_cast<std::size_t>(r) * w + n], static_cast<std::size_t>(n));
  }
  return OkStatus();
}

Status ReedSolomon::Reconstruct(std::vector<std::vector<std::uint8_t>>& shards,
                                const std::vector<bool>& present) const {
  const int total = k_ + m_;
  if (static_cast<int>(shards.size()) != total || static_cast<int>(present.size()) != total) {
    return InvalidArgument("shard count mismatch");
  }
  int have = 0;
  for (const bool p : present) {
    have += p ? 1 : 0;
  }
  if (have < k_) {
    return DataLoss("only " + std::to_string(have) + " of " + std::to_string(k_) +
                    " required shards survive");
  }
  bool anything_missing = false;
  for (int i = 0; i < total; ++i) {
    if (!present[i]) {
      anything_missing = true;
      break;
    }
  }
  if (!anything_missing) {
    return OkStatus();
  }
  const std::size_t len = shards[0].size();
  for (const auto& s : shards) {
    if (s.size() != len) {
      return InvalidArgument("shards have unequal length");
    }
  }

  // Build the k x k matrix mapping data words -> the k survivor shards we
  // will use, invert it, then data = inv * survivors.
  std::vector<int> use;  // survivor shard indexes, k of them
  for (int i = 0; i < total && static_cast<int>(use.size()) < k_; ++i) {
    if (present[i]) {
      use.push_back(i);
    }
  }
  std::vector<std::uint8_t> mat(static_cast<std::size_t>(k_) * k_, 0);
  for (int r = 0; r < k_; ++r) {
    const int shard = use[r];
    if (shard < k_) {
      mat[static_cast<std::size_t>(r) * k_ + shard] = 1;  // identity row
    } else {
      std::memcpy(&mat[static_cast<std::size_t>(r) * k_], ParityRow(shard - k_),
                  static_cast<std::size_t>(k_));
    }
  }
  MEMFLOW_RETURN_IF_ERROR(GfInvertMatrix(mat, k_));

  // Recover missing data shards.
  for (int d = 0; d < k_; ++d) {
    if (present[d]) {
      continue;
    }
    std::vector<std::uint8_t>& out = shards[d];
    GfMulRow(out.data(), shards[use[0]].data(), mat[static_cast<std::size_t>(d) * k_], len);
    for (int c = 1; c < k_; ++c) {
      GfMulAccum(out.data(), shards[use[c]].data(),
                 mat[static_cast<std::size_t>(d) * k_ + c], len);
    }
  }
  // Recompute missing parity shards from (now complete) data.
  for (int p = 0; p < m_; ++p) {
    if (present[k_ + p]) {
      continue;
    }
    std::vector<std::uint8_t>& out = shards[k_ + p];
    const std::uint8_t* row = ParityRow(p);
    GfMulRow(out.data(), shards[0].data(), row[0], len);
    for (int c = 1; c < k_; ++c) {
      GfMulAccum(out.data(), shards[c].data(), row[c], len);
    }
  }
  return OkStatus();
}

}  // namespace memflow::ft
