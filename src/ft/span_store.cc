// Copyright (c) memflow authors. MIT license.

#include "ft/span_store.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace memflow::ft {

namespace {

// Parity/reconstruction compute intensity: GF multiply-accumulate work per
// byte per parity shard, expressed in simhw work units.
constexpr double kParityWorkPerByte = 0.5;

}  // namespace

std::string_view RedundancyName(Redundancy r) {
  switch (r) {
    case Redundancy::kNone:
      return "none";
    case Redundancy::kReplication:
      return "replication";
    case Redundancy::kErasureCoding:
      return "erasure-coding";
  }
  return "?";
}

SpanStore::SpanStore(region::RegionManager& regions,
                     std::vector<simhw::MemoryDeviceId> devices,
                     simhw::ComputeDeviceId observer, StoreOptions options)
    : regions_(&regions),
      devices_(std::move(devices)),
      observer_(observer),
      options_(options),
      rs_(options.rs_data, options.rs_parity) {
  MEMFLOW_CHECK(!devices_.empty());
  MEMFLOW_CHECK(options_.span_bytes >= 4 * kKiB);
  if (options_.scheme == Redundancy::kReplication) {
    MEMFLOW_CHECK_MSG(devices_.size() >= static_cast<std::size_t>(options_.replicas),
                      "need at least `replicas` devices");
  }
  if (options_.scheme == Redundancy::kErasureCoding) {
    MEMFLOW_CHECK_MSG(
        devices_.size() >= static_cast<std::size_t>(options_.rs_data + options_.rs_parity),
        "need at least k+m devices");
  }
}

SpanStore::~SpanStore() {
  for (const Span& span : spans_) {
    for (const Replica& r : span.copies) {
      (void)regions_->ForceFree(r.region);
    }
  }
  for (const Group& g : groups_) {
    for (const Replica& r : g.parity) {
      (void)regions_->ForceFree(r.region);
    }
  }
}

void SpanStore::ChargeParityCompute(std::uint64_t bytes) {
  const double work =
      kParityWorkPerByte * static_cast<double>(bytes) * options_.rs_parity;
  const SimDuration t =
      regions_->cluster().compute(observer_).ComputeTime(work, /*parallel_fraction=*/0.9);
  if (options_.offload_parity) {
    background_cost_ += t;  // computed near memory, off the client path
  } else {
    total_cost_ += t;
  }
}

Result<simhw::MemoryDeviceId> SpanStore::NextDevice(
    const std::vector<simhw::MemoryDeviceId>& exclude) {
  for (std::size_t probe = 0; probe < devices_.size(); ++probe) {
    const simhw::MemoryDeviceId dev = devices_[rr_device_ % devices_.size()];
    rr_device_++;
    if (regions_->cluster().memory(dev).failed()) {
      continue;
    }
    if (std::find(exclude.begin(), exclude.end(), dev) != exclude.end()) {
      continue;
    }
    if (regions_->cluster().memory(dev).free_bytes() < options_.span_bytes) {
      continue;
    }
    return dev;
  }
  return ResourceExhausted("no usable far-memory device left");
}

bool SpanStore::ReplicaAlive(const Replica& r) const {
  if (regions_->cluster().memory(r.device).failed()) {
    return false;
  }
  auto info = regions_->Info(r.region);
  return info.ok() && !info->lost;
}

Status SpanStore::WriteRegion(const Replica& replica, std::span<const std::uint8_t> payload,
                              SimDuration& cost) {
  MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc,
                           regions_->OpenAsync(replica.region, self_, observer_));
  acc.EnqueueWrite(0, payload.data(), payload.size());
  MEMFLOW_ASSIGN_OR_RETURN(cost, acc.Drain());
  return OkStatus();
}

Result<ObjectId> SpanStore::Put(std::span<const std::uint8_t> data) {
  if (data.empty()) {
    return InvalidArgument("empty object");
  }
  const auto id = ObjectId(next_object_++);
  Object obj;
  obj.size = data.size();
  MEMFLOW_ASSIGN_OR_RETURN(obj.frags, Append(id, data, 0));
  objects_.emplace(id.value, std::move(obj));
  return id;
}

Result<std::vector<SpanStore::Fragment>> SpanStore::Append(ObjectId id,
                                                           std::span<const std::uint8_t> data,
                                                           std::uint32_t first_frag_index) {
  std::vector<Fragment> frags;
  std::size_t pos = 0;
  while (pos < data.size()) {
    if (open_span_ < 0) {
      spans_.emplace_back();
      open_span_ = static_cast<std::int64_t>(spans_.size()) - 1;
      staging_.clear();
      staging_.reserve(options_.span_bytes);
    }
    Span& span = spans_[static_cast<std::size_t>(open_span_)];
    const std::uint64_t space = options_.span_bytes - staging_.size();
    const auto take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(space, data.size() - pos));
    const auto offset = static_cast<std::uint32_t>(staging_.size());
    staging_.insert(staging_.end(), data.begin() + static_cast<std::ptrdiff_t>(pos),
                    data.begin() + static_cast<std::ptrdiff_t>(pos + take));
    const auto span_index = static_cast<std::uint32_t>(open_span_);
    frags.push_back(Fragment{span_index, offset, take});
    span.objects.push_back(LiveObject{
        id, offset, take, first_frag_index + static_cast<std::uint32_t>(frags.size()) - 1});
    span.live_bytes += take;
    pos += take;
    if (staging_.size() == options_.span_bytes) {
      MEMFLOW_RETURN_IF_ERROR(SealOpenSpan());
    }
  }
  return frags;
}

Status SpanStore::SealOpenSpan() {
  MEMFLOW_CHECK(open_span_ >= 0);
  const auto s = static_cast<std::uint32_t>(open_span_);
  staging_.resize(options_.span_bytes, 0);  // pad the tail

  if (options_.scheme == Redundancy::kErasureCoding) {
    pending_payloads_.emplace(s, std::move(staging_));
    pending_group_.push_back(s);
    staging_ = {};
    open_span_ = -1;
    if (static_cast<int>(pending_group_.size()) == options_.rs_data) {
      return FlushPendingGroup();
    }
    return OkStatus();
  }

  const Status st = MaterializeSpan(s, staging_);
  staging_.clear();
  open_span_ = -1;
  return st;
}

Status SpanStore::MaterializeSpan(std::uint32_t span_index,
                                  const std::vector<std::uint8_t>& payload) {
  Span& span = spans_[span_index];
  const int copies = options_.scheme == Redundancy::kReplication ? options_.replicas : 1;
  std::vector<simhw::MemoryDeviceId> used;
  SimDuration slowest{};
  for (int i = 0; i < copies; ++i) {
    MEMFLOW_ASSIGN_OR_RETURN(simhw::MemoryDeviceId dev, NextDevice(used));
    used.push_back(dev);
    MEMFLOW_ASSIGN_OR_RETURN(
        region::RegionId region,
        regions_->AllocateOn(dev, options_.span_bytes, region::Properties{}, self_));
    Replica replica{region, dev};
    SimDuration cost;
    MEMFLOW_RETURN_IF_ERROR(WriteRegion(replica, payload, cost));
    slowest = std::max(slowest, cost);
    span.copies.push_back(replica);
  }
  total_cost_ += slowest;  // replicas written in parallel
  return OkStatus();
}

Status SpanStore::FlushPendingGroup() {
  if (pending_group_.empty()) {
    return OkStatus();
  }
  const int k = options_.rs_data;
  const int m = options_.rs_parity;
  const std::size_t len = options_.span_bytes;

  // Assemble k data shards: real pending payloads plus virtual zero spans.
  std::vector<std::uint8_t> zeros(len, 0);
  std::vector<std::span<const std::uint8_t>> data;
  data.reserve(static_cast<std::size_t>(k));
  for (const std::uint32_t s : pending_group_) {
    data.emplace_back(pending_payloads_.at(s));
  }
  while (static_cast<int>(data.size()) < k) {
    data.emplace_back(zeros);
  }

  std::vector<std::vector<std::uint8_t>> parity(static_cast<std::size_t>(m),
                                                std::vector<std::uint8_t>(len));
  std::vector<std::span<std::uint8_t>> parity_spans;
  parity_spans.reserve(static_cast<std::size_t>(m));
  for (auto& p : parity) {
    parity_spans.emplace_back(p);
  }
  MEMFLOW_RETURN_IF_ERROR(rs_.Encode(data, parity_spans));
  ChargeParityCompute(static_cast<std::uint64_t>(k) * len);

  Group group;
  group.data_spans = pending_group_;
  std::vector<simhw::MemoryDeviceId> used;
  SimDuration slowest{};

  const int group_index = static_cast<int>(groups_.size());
  for (std::size_t i = 0; i < pending_group_.size(); ++i) {
    const std::uint32_t s = pending_group_[i];
    MEMFLOW_ASSIGN_OR_RETURN(simhw::MemoryDeviceId dev, NextDevice(used));
    used.push_back(dev);
    MEMFLOW_ASSIGN_OR_RETURN(
        region::RegionId region,
        regions_->AllocateOn(dev, options_.span_bytes, region::Properties{}, self_));
    Replica replica{region, dev};
    SimDuration cost;
    MEMFLOW_RETURN_IF_ERROR(WriteRegion(replica, pending_payloads_.at(s), cost));
    slowest = std::max(slowest, cost);
    spans_[s].copies.push_back(replica);
    spans_[s].group = group_index;
    spans_[s].slot = static_cast<int>(i);
  }
  for (int j = 0; j < m; ++j) {
    MEMFLOW_ASSIGN_OR_RETURN(simhw::MemoryDeviceId dev, NextDevice(used));
    used.push_back(dev);
    MEMFLOW_ASSIGN_OR_RETURN(
        region::RegionId region,
        regions_->AllocateOn(dev, options_.span_bytes, region::Properties{}, self_));
    Replica replica{region, dev};
    SimDuration cost;
    MEMFLOW_RETURN_IF_ERROR(WriteRegion(replica, parity[static_cast<std::size_t>(j)], cost));
    slowest = std::max(slowest, cost);
    group.parity.push_back(replica);
  }
  total_cost_ += slowest;  // all k+m shards written in parallel

  for (const std::uint32_t s : pending_group_) {
    pending_payloads_.erase(s);
  }
  pending_group_.clear();
  groups_.push_back(std::move(group));
  return OkStatus();
}

Status SpanStore::Flush() {
  if (open_span_ >= 0) {
    Span& span = spans_[static_cast<std::size_t>(open_span_)];
    if (span.objects.empty() && staging_.empty()) {
      span.dropped = true;
      open_span_ = -1;
    } else {
      MEMFLOW_RETURN_IF_ERROR(SealOpenSpan());
    }
  }
  if (options_.scheme == Redundancy::kErasureCoding) {
    return FlushPendingGroup();
  }
  return OkStatus();
}

Status SpanStore::Get(ObjectId id, std::vector<std::uint8_t>& out) {
  auto it = objects_.find(id.value);
  if (it == objects_.end() || it->second.deleted) {
    return NotFound("unknown object");
  }
  Object& obj = it->second;
  if (obj.lost) {
    return DataLoss("object " + std::to_string(id.value) + " was lost");
  }
  out.resize(obj.size);
  std::size_t pos = 0;
  for (const Fragment& frag : obj.frags) {
    MEMFLOW_RETURN_IF_ERROR(ReadSpanBytes(frag.span, frag.offset, frag.len, out.data() + pos));
    pos += frag.len;
  }
  return OkStatus();
}

Status SpanStore::ReadFullShard(const Replica& replica, std::vector<std::uint8_t>& out,
                                SimDuration& cost) {
  out.resize(options_.span_bytes);
  MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc,
                           regions_->OpenAsync(replica.region, self_, observer_));
  acc.EnqueueRead(0, out.data(), out.size());
  MEMFLOW_ASSIGN_OR_RETURN(cost, acc.Drain());
  return OkStatus();
}

Status SpanStore::ReadSpanBytes(std::uint32_t s, std::uint32_t offset, std::uint32_t len,
                                std::uint8_t* dst) {
  Span& span = spans_[s];
  MEMFLOW_CHECK(!span.dropped);

  // Unsealed data is still client-side (staging or pending payload).
  if (span.copies.empty()) {
    if (open_span_ >= 0 && static_cast<std::uint32_t>(open_span_) == s) {
      std::memcpy(dst, staging_.data() + offset, len);
      return OkStatus();
    }
    auto pit = pending_payloads_.find(s);
    if (pit != pending_payloads_.end()) {
      std::memcpy(dst, pit->second.data() + offset, len);
      return OkStatus();
    }
    return Internal("span has neither copies nor a pending payload");
  }

  // Fast path: any alive copy serves the read directly.
  for (const Replica& r : span.copies) {
    if (!ReplicaAlive(r)) {
      continue;
    }
    MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc,
                             regions_->OpenAsync(r.region, self_, observer_));
    acc.EnqueueRead(offset, dst, len);
    MEMFLOW_ASSIGN_OR_RETURN(SimDuration cost, acc.Drain());
    total_cost_ += cost;
    return OkStatus();
  }

  // Degraded read: reconstruct through the spanset's parity (EC only).
  if (span.group < 0) {
    return DataLoss("span " + std::to_string(s) + " has no surviving copy");
  }
  const Group& group = groups_[static_cast<std::size_t>(span.group)];
  const int k = options_.rs_data;
  const int m = options_.rs_parity;
  std::vector<std::vector<std::uint8_t>> shards(static_cast<std::size_t>(k + m));
  std::vector<bool> present(static_cast<std::size_t>(k + m), false);
  SimDuration slowest{};
  int have = 0;

  for (std::size_t i = 0; i < group.data_spans.size() && have < k; ++i) {
    const Span& ds = spans_[group.data_spans[i]];
    if (ds.copies.empty() || !ReplicaAlive(ds.copies.front())) {
      continue;
    }
    SimDuration cost;
    MEMFLOW_RETURN_IF_ERROR(ReadFullShard(ds.copies.front(), shards[i], cost));
    slowest = std::max(slowest, cost);
    present[i] = true;
    have++;
  }
  // Virtual zero spans are always "present".
  for (int i = static_cast<int>(group.data_spans.size()); i < k && have < k; ++i) {
    shards[static_cast<std::size_t>(i)].assign(options_.span_bytes, 0);
    present[static_cast<std::size_t>(i)] = true;
    have++;
  }
  for (int j = 0; j < m && have < k; ++j) {
    const Replica& pr = group.parity[static_cast<std::size_t>(j)];
    if (!ReplicaAlive(pr)) {
      continue;
    }
    SimDuration cost;
    MEMFLOW_RETURN_IF_ERROR(ReadFullShard(pr, shards[static_cast<std::size_t>(k + j)], cost));
    slowest = std::max(slowest, cost);
    present[static_cast<std::size_t>(k + j)] = true;
    have++;
  }
  if (have < k) {
    return DataLoss("spanset lost more shards than parity can absorb");
  }
  // Size the missing buffers, reconstruct, serve from the rebuilt shard.
  for (auto& shard : shards) {
    if (shard.empty()) {
      shard.assign(options_.span_bytes, 0);
    }
  }
  MEMFLOW_RETURN_IF_ERROR(rs_.Reconstruct(shards, present));
  total_cost_ += slowest;
  // Degraded-read decode is on the client's critical path regardless of
  // parity offload.
  const double work = kParityWorkPerByte * static_cast<double>(options_.span_bytes) * k;
  total_cost_ += regions_->cluster().compute(observer_).ComputeTime(work, 0.9);

  MEMFLOW_CHECK(span.slot >= 0);
  std::memcpy(dst, shards[static_cast<std::size_t>(span.slot)].data() + offset, len);
  return OkStatus();
}

Status SpanStore::Delete(ObjectId id) {
  auto it = objects_.find(id.value);
  if (it == objects_.end() || it->second.deleted) {
    return NotFound("unknown object");
  }
  Object& obj = it->second;
  for (const Fragment& frag : obj.frags) {
    Span& span = spans_[frag.span];
    span.dead_bytes += frag.len;
    span.live_bytes -= frag.len;
    std::erase_if(span.objects,
                  [&](const LiveObject& lo) { return lo.object == id; });
  }
  obj.deleted = true;
  obj.frags.clear();
  return OkStatus();
}

Result<RecoveryReport> SpanStore::HandleDeviceFailure(simhw::MemoryDeviceId failed) {
  RecoveryReport report;
  (void)regions_->MarkLostOn(failed);
  const SimDuration before = total_cost_;

  // Replication / single-copy spans.
  for (std::uint32_t s = 0; s < spans_.size(); ++s) {
    Span& span = spans_[s];
    if (span.dropped || span.group >= 0 || span.copies.empty()) {
      continue;
    }
    std::vector<Replica> alive;
    std::vector<Replica> dead;
    for (const Replica& r : span.copies) {
      (ReplicaAlive(r) ? alive : dead).push_back(r);
    }
    if (dead.empty()) {
      continue;
    }
    for (const Replica& r : dead) {
      (void)regions_->ForceFree(r.region);
    }
    if (alive.empty()) {
      // Single-copy store (or all replicas lost): the objects are gone.
      for (const LiveObject& lo : span.objects) {
        auto oit = objects_.find(lo.object.value);
        if (oit != objects_.end() && !oit->second.lost) {
          oit->second.lost = true;
          report.objects_lost++;
        }
      }
      span.copies.clear();
      span.dropped = true;
      continue;
    }
    span.copies = alive;
    // Re-replicate up to the configured count.
    std::vector<std::uint8_t> payload;
    SimDuration read_cost;
    MEMFLOW_RETURN_IF_ERROR(ReadFullShard(span.copies.front(), payload, read_cost));
    total_cost_ += read_cost;
    while (static_cast<int>(span.copies.size()) < options_.replicas) {
      std::vector<simhw::MemoryDeviceId> exclude;
      for (const Replica& r : span.copies) {
        exclude.push_back(r.device);
      }
      MEMFLOW_ASSIGN_OR_RETURN(simhw::MemoryDeviceId dev, NextDevice(exclude));
      MEMFLOW_ASSIGN_OR_RETURN(
          region::RegionId region,
          regions_->AllocateOn(dev, options_.span_bytes, region::Properties{}, self_));
      Replica replica{region, dev};
      SimDuration cost;
      MEMFLOW_RETURN_IF_ERROR(WriteRegion(replica, payload, cost));
      total_cost_ += cost;
      span.copies.push_back(replica);
      report.spans_repaired++;
      report.bytes_rewritten += options_.span_bytes;
    }
  }

  // Erasure-coded spansets.
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    Group& group = groups_[gi];
    if (group.dropped) {
      continue;
    }
    const int k = options_.rs_data;
    const int m = options_.rs_parity;
    std::vector<int> dead_slots;
    for (std::size_t i = 0; i < group.data_spans.size(); ++i) {
      Span& ds = spans_[group.data_spans[i]];
      if (!ds.copies.empty() && !ReplicaAlive(ds.copies.front())) {
        dead_slots.push_back(static_cast<int>(i));
      }
    }
    for (int j = 0; j < m; ++j) {
      if (!ReplicaAlive(group.parity[static_cast<std::size_t>(j)])) {
        dead_slots.push_back(k + j);
      }
    }
    if (dead_slots.empty()) {
      continue;
    }

    // Gather survivors, reconstruct, rewrite dead shards elsewhere.
    std::vector<std::vector<std::uint8_t>> shards(static_cast<std::size_t>(k + m));
    std::vector<bool> present(static_cast<std::size_t>(k + m), false);
    SimDuration slowest{};
    for (std::size_t i = 0; i < group.data_spans.size(); ++i) {
      const Span& ds = spans_[group.data_spans[i]];
      if (ds.copies.empty() || !ReplicaAlive(ds.copies.front())) {
        continue;
      }
      SimDuration cost;
      MEMFLOW_RETURN_IF_ERROR(ReadFullShard(ds.copies.front(), shards[i], cost));
      slowest = std::max(slowest, cost);
      present[i] = true;
    }
    for (int i = static_cast<int>(group.data_spans.size()); i < k; ++i) {
      shards[static_cast<std::size_t>(i)].assign(options_.span_bytes, 0);
      present[static_cast<std::size_t>(i)] = true;
    }
    for (int j = 0; j < m; ++j) {
      const Replica& pr = group.parity[static_cast<std::size_t>(j)];
      if (!ReplicaAlive(pr)) {
        continue;
      }
      SimDuration cost;
      MEMFLOW_RETURN_IF_ERROR(ReadFullShard(pr, shards[static_cast<std::size_t>(k + j)], cost));
      slowest = std::max(slowest, cost);
      present[static_cast<std::size_t>(k + j)] = true;
    }
    total_cost_ += slowest;

    int have = 0;
    for (const bool p : present) {
      have += p ? 1 : 0;
    }
    if (have < k) {
      for (const std::uint32_t s : group.data_spans) {
        for (const LiveObject& lo : spans_[s].objects) {
          auto oit = objects_.find(lo.object.value);
          if (oit != objects_.end() && !oit->second.lost) {
            oit->second.lost = true;
            report.objects_lost++;
          }
        }
        spans_[s].dropped = true;
      }
      group.dropped = true;
      continue;
    }
    for (auto& shard : shards) {
      if (shard.empty()) {
        shard.assign(options_.span_bytes, 0);
      }
    }
    MEMFLOW_RETURN_IF_ERROR(rs_.Reconstruct(shards, present));
    ChargeParityCompute(static_cast<std::uint64_t>(k) * options_.span_bytes);

    std::vector<simhw::MemoryDeviceId> exclude;
    for (std::size_t i = 0; i < group.data_spans.size(); ++i) {
      const Span& ds = spans_[group.data_spans[i]];
      if (!ds.copies.empty() && ReplicaAlive(ds.copies.front())) {
        exclude.push_back(ds.copies.front().device);
      }
    }
    for (int j = 0; j < m; ++j) {
      if (ReplicaAlive(group.parity[static_cast<std::size_t>(j)])) {
        exclude.push_back(group.parity[static_cast<std::size_t>(j)].device);
      }
    }
    for (const int slot : dead_slots) {
      MEMFLOW_ASSIGN_OR_RETURN(simhw::MemoryDeviceId dev, NextDevice(exclude));
      exclude.push_back(dev);
      MEMFLOW_ASSIGN_OR_RETURN(
          region::RegionId region,
          regions_->AllocateOn(dev, options_.span_bytes, region::Properties{}, self_));
      Replica replica{region, dev};
      SimDuration cost;
      MEMFLOW_RETURN_IF_ERROR(
          WriteRegion(replica, shards[static_cast<std::size_t>(slot)], cost));
      total_cost_ += cost;
      if (slot < k) {
        Span& ds = spans_[group.data_spans[static_cast<std::size_t>(slot)]];
        if (!ds.copies.empty()) {
          (void)regions_->ForceFree(ds.copies.front().region);
        }
        ds.copies = {replica};
      } else {
        (void)regions_->ForceFree(group.parity[static_cast<std::size_t>(slot - k)].region);
        group.parity[static_cast<std::size_t>(slot - k)] = replica;
      }
      report.spans_repaired++;
      report.bytes_rewritten += options_.span_bytes;
    }
  }

  // Recovery happens off the client's critical path.
  report.cost = total_cost_ - before;
  total_cost_ = before;
  background_cost_ += report.cost;
  return report;
}

Result<CompactionReport> SpanStore::Compact() {
  CompactionReport report;
  const SimDuration before = total_cost_;

  // Collect rewrite units: EC spansets or standalone spans past the dead
  // threshold.
  auto rewrite_objects = [&](const std::vector<std::uint32_t>& span_ids) -> Status {
    std::vector<ObjectId> victims;
    for (const std::uint32_t s : span_ids) {
      for (const LiveObject& lo : spans_[s].objects) {
        if (std::find(victims.begin(), victims.end(), lo.object) == victims.end()) {
          victims.push_back(lo.object);
        }
      }
    }
    for (const ObjectId v : victims) {
      Object& obj = objects_.at(v.value);
      std::vector<std::uint8_t> payload;
      MEMFLOW_RETURN_IF_ERROR(Get(v, payload));
      // Kill the old fragments everywhere, then re-append whole.
      for (const Fragment& frag : obj.frags) {
        Span& span = spans_[frag.span];
        span.dead_bytes += frag.len;
        span.live_bytes -= frag.len;
        std::erase_if(span.objects,
                      [&](const LiveObject& lo) { return lo.object == v; });
      }
      obj.frags.clear();
      MEMFLOW_ASSIGN_OR_RETURN(obj.frags, Append(v, payload, 0));
      report.bytes_moved += payload.size();
    }
    return OkStatus();
  };

  // NOTE: rewrite_objects() appends new spans/groups, so spans_ and groups_
  // may reallocate — always re-index after calling it, never hold references
  // across the call.
  if (options_.scheme == Redundancy::kErasureCoding) {
    const std::size_t existing_groups = groups_.size();  // new groups are clean
    for (std::size_t gi = 0; gi < existing_groups; ++gi) {
      if (groups_[gi].dropped) {
        continue;
      }
      std::uint64_t live = 0;
      std::uint64_t dead = 0;
      for (const std::uint32_t s : groups_[gi].data_spans) {
        live += spans_[s].live_bytes;
        dead += spans_[s].dead_bytes;
      }
      if (live + dead == 0 ||
          static_cast<double>(dead) / static_cast<double>(live + dead) <
              options_.compaction_threshold) {
        continue;
      }
      MEMFLOW_RETURN_IF_ERROR(rewrite_objects(groups_[gi].data_spans));
      // The whole spanset is now dead: free every shard.
      Group& group = groups_[gi];
      for (const std::uint32_t s : group.data_spans) {
        Span& ds = spans_[s];
        for (const Replica& r : ds.copies) {
          (void)regions_->ForceFree(r.region);
        }
        ds.copies.clear();
        ds.dropped = true;
        report.bytes_reclaimed += options_.span_bytes;
      }
      for (const Replica& r : group.parity) {
        (void)regions_->ForceFree(r.region);
        report.bytes_reclaimed += options_.span_bytes;
      }
      group.parity.clear();
      group.dropped = true;
      report.units_rewritten++;
    }
  } else {
    const std::size_t existing_spans = spans_.size();
    for (std::uint32_t s = 0; s < existing_spans; ++s) {
      if (spans_[s].dropped || spans_[s].copies.empty()) {
        continue;
      }
      const std::uint64_t live = spans_[s].live_bytes;
      const std::uint64_t dead = spans_[s].dead_bytes;
      if (live + dead == 0 ||
          static_cast<double>(dead) / static_cast<double>(live + dead) <
              options_.compaction_threshold) {
        continue;
      }
      MEMFLOW_RETURN_IF_ERROR(rewrite_objects({s}));
      Span& span = spans_[s];
      for (const Replica& r : span.copies) {
        (void)regions_->ForceFree(r.region);
        report.bytes_reclaimed += options_.span_bytes;
      }
      span.copies.clear();
      span.dropped = true;
      report.units_rewritten++;
    }
  }

  MEMFLOW_RETURN_IF_ERROR(Flush());

  // Compaction is background work (Carbink runs it off the critical path).
  report.cost = total_cost_ - before;
  total_cost_ = before;
  background_cost_ += report.cost;
  return report;
}

StoreFootprint SpanStore::footprint() const {
  StoreFootprint fp;
  for (const auto& [_, obj] : objects_) {
    if (!obj.deleted && !obj.lost) {
      fp.user_bytes += obj.size;
    }
  }
  for (const Span& span : spans_) {
    if (!span.dropped) {
      fp.raw_bytes += span.copies.size() * options_.span_bytes;
    }
  }
  for (const Group& group : groups_) {
    if (!group.dropped) {
      fp.raw_bytes += group.parity.size() * options_.span_bytes;
    }
  }
  return fp;
}

}  // namespace memflow::ft
