// Copyright (c) memflow authors. MIT license.
//
// GF(2^8) arithmetic for the Reed–Solomon coder, using the AES/RS-standard
// reduction polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d). Multiplication and
// division go through log/exp tables built once at startup.

#ifndef MEMFLOW_FT_GF256_H_
#define MEMFLOW_FT_GF256_H_

#include <cstddef>
#include <cstdint>

namespace memflow::ft {

// Addition and subtraction in GF(2^8) are both XOR.
constexpr std::uint8_t GfAdd(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>(a ^ b);
}

std::uint8_t GfMul(std::uint8_t a, std::uint8_t b);

// b must be nonzero.
std::uint8_t GfDiv(std::uint8_t a, std::uint8_t b);

// a must be nonzero.
std::uint8_t GfInv(std::uint8_t a);

std::uint8_t GfExp(int power);  // generator^power, power taken mod 255

// dst[i] ^= coeff * src[i] for i in [0, n): the inner loop of encode/decode.
void GfMulAccum(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t coeff,
                std::size_t n);

// dst[i] = coeff * src[i].
void GfMulRow(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t coeff, std::size_t n);

}  // namespace memflow::ft

#endif  // MEMFLOW_FT_GF256_H_
