// Copyright (c) memflow authors. MIT license.
//
// Multi-level profiling (paper §3, Challenge 8, limitation (1): "How can we
// debug, profile, and optimize dataflow applications with multiple
// abstraction layers when the runtime system hides performance-relevant
// details?" — citing Beischl et al.'s multi-level dataflow profiling). The
// profiler answers it the way that work suggests: the runtime *is* the
// bookkeeper, so time can be attributed at every abstraction level —
//
//   level 0: job        (makespan, critical path, parallel efficiency),
//   level 1: task       (queueing vs execution, handover costs, attempts),
//   level 2: region     (traffic per region class),
//   level 3: device     (per memory/compute device utilization).

#ifndef MEMFLOW_RTS_PROFILER_H_
#define MEMFLOW_RTS_PROFILER_H_

#include <string>
#include <vector>

#include "rts/runtime.h"

namespace memflow::rts {

struct JobProfile {
  // Level 0 — job.
  SimDuration makespan;
  SimDuration critical_path;     // longest duration+handover chain in the DAG
  SimDuration total_task_time;   // sum over tasks (> makespan means overlap)
  SimDuration total_handover;    // copy costs paid at handovers
  int devices_used = 0;
  double parallel_efficiency = 0;  // total_task_time / (makespan * devices)

  // Level 1 — per task.
  struct TaskLine {
    std::string name;
    std::string device;
    SimDuration queueing;        // job start (or last input) to dispatch
    SimDuration duration;
    SimDuration handover;
    bool zero_copy = false;
    bool on_critical_path = false;
    int attempts = 1;
  };
  std::vector<TaskLine> tasks;
};

// Builds a profile for a finished job.
Result<JobProfile> ProfileJob(const Runtime& runtime, dataflow::JobId id);

// Renders the profile plus the runtime's region-class traffic (level 2) and
// device utilization (level 3) as one multi-level text report.
std::string RenderProfile(const Runtime& runtime, const JobProfile& profile);

// Exports a finished job's task timeline as Chrome trace-event JSON
// (chrome://tracing / Perfetto): one lane per compute device, one complete
// event per task, timestamps in simulated microseconds. The format bridges
// the simulated runtime to standard visual debugging tools — the paper's
// Challenge 8 asks exactly for such cross-layer observability.
Result<std::string> ExportChromeTrace(const Runtime& runtime, dataflow::JobId id);

}  // namespace memflow::rts

#endif  // MEMFLOW_RTS_PROFILER_H_
