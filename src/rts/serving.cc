// Copyright (c) memflow authors. MIT license.

#include "rts/serving.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/assert.h"

namespace memflow::rts {

namespace {

constexpr telemetry::HistogramSpec kLatencySpec{/*first_bound=*/1000.0,
                                               /*growth=*/4.0, /*buckets=*/14};

}  // namespace

ServingLayer::ServingLayer(Runtime& rt, Options opts) : rt_(&rt), opts_(opts) {
  MEMFLOW_CHECK(opts_.slack > 0.0);
  rt_->SetJobObserver([this](const JobReport& report) { OnJobTerminal(report); });
  telemetry::Registry& reg = rt_->metrics();
  for (int c = 0; c < 3; ++c) {
    class_latency_[c] = reg.GetHistogram(
        "serving_class_latency_ns", "Arrival-to-finish job latency by SLO class",
        kLatencySpec,
        {{"class", std::string(SloClassName(static_cast<dataflow::SloClass>(c)))}});
  }
}

std::size_t ServingLayer::AddTenant(TenantConfig config) {
  MEMFLOW_CHECK(config.weight > 0.0);
  MEMFLOW_CHECK(config.tokens_per_sec > 0.0);
  MEMFLOW_CHECK(config.burst_tokens >= 1.0);
  Tenant t;
  t.config = std::move(config);
  t.tokens = t.config.burst_tokens;  // full bucket at registration
  t.last_refill = rt_->clock().now();
  telemetry::Registry& reg = rt_->metrics();
  const auto outcome = [&](const char* rule) {
    return reg.GetCounter("serving_jobs_total", "Serving-layer job outcomes by tenant",
                          {{"tenant", t.config.name}, {"outcome", rule}});
  };
  t.admitted = outcome(kServeAdmit);
  t.rejected_quota = outcome(kServeRejectQuota);
  t.rejected_slo = outcome(kServeRejectSlo);
  t.rejected_infeasible = outcome(kServeRejectInfeasible);
  t.shed = outcome(kServeShedBackpressure);
  t.completed = outcome("completed");
  t.failed = outcome("failed");
  t.latency_ns = reg.GetHistogram("serving_job_latency_ns",
                                  "Arrival-to-finish job latency by tenant",
                                  kLatencySpec, {{"tenant", t.config.name}});
  tenants_.push_back(std::move(t));
  return tenants_.size() - 1;
}

void ServingLayer::RefillTokens(Tenant& t, SimTime now) {
  const SimDuration elapsed = now - t.last_refill;
  if (elapsed.ns > 0) {
    t.tokens = std::min(t.config.burst_tokens,
                        t.tokens + static_cast<double>(elapsed.ns) *
                                       t.config.tokens_per_sec / 1e9);
    t.last_refill = now;
  }
}

SimDuration ServingLayer::EstimateJobCost(const dataflow::Job& job) const {
  const CostModel& model = rt_->cost_model();
  const simhw::Cluster& cluster = rt_->cluster();
  const std::vector<dataflow::TaskId> order = job.TopologicalOrder();
  std::vector<std::uint64_t> est_input(job.num_tasks(), 0);
  SimDuration total;
  for (const dataflow::TaskId t : order) {
    std::uint64_t est = 0;
    for (const dataflow::TaskId p : job.DataPredecessors(t)) {
      est += CostModel::OutputBytes(job.task(p).props, est_input[p.value]);
    }
    est_input[t.value] = est;
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (const simhw::ComputeDeviceId id : cluster.AllComputeDevices()) {
      const auto device_est = model.Estimate(job.task(t).props, est, id);
      if (device_est.ok()) {
        best = std::min(best, device_est->total.ns);
      }
    }
    if (best == std::numeric_limits<std::int64_t>::max()) {
      return SimDuration{};  // no feasible estimate: the SLO model abstains
    }
    total += SimDuration::Nanos(best);
  }
  return total;
}

AdmissionDecision ServingLayer::Offer(std::size_t tenant, dataflow::Job job) {
  MEMFLOW_CHECK(tenant < tenants_.size());
  Tenant& t = tenants_[tenant];
  const SimTime now = rt_->clock().now();
  t.stats.arrived++;

  AdmissionDecision decision;

  // Rule order is part of the catalog contract: quota before backpressure
  // before the SLO model — a tenant out of tokens is told so even when its
  // queue is also full.
  RefillTokens(t, now);
  if (t.tokens < 1.0) {
    t.stats.rejected_quota++;
    t.rejected_quota->Increment();
    decision.rule = kServeRejectQuota;
    return decision;
  }

  if (t.config.max_inflight > 0 && t.inflight >= t.config.max_inflight) {
    t.stats.shed++;
    t.shed->Increment();
    decision.rule = kServeShedBackpressure;
    return decision;
  }

  // Stamp the tenant's latency class on every task before estimation, so the
  // cost model, placement, and the dispatch queue all see the same class.
  for (std::size_t i = 0; i < job.num_tasks(); ++i) {
    job.task(dataflow::TaskId(static_cast<std::uint32_t>(i))).props.slo = t.config.slo;
  }

  const SimDuration est = EstimateJobCost(job);
  if (t.config.deadline.ns > 0 && est.ns > 0) {
    // Predicted completion: the least-loaded alive device must drain its
    // committed backlog, then run the whole job serially (a conservative
    // critical-path bound), scaled by the slack factor.
    double backlog_ns = 0.0;
    bool any_alive = false;
    double min_backlog = std::numeric_limits<double>::infinity();
    for (const simhw::ComputeDeviceId id : rt_->cluster().AllComputeDevices()) {
      const simhw::ComputeDevice& dev = rt_->cluster().compute(id);
      if (dev.failed()) {
        continue;
      }
      any_alive = true;
      min_backlog = std::min(min_backlog, dev.planned_ns / dev.profile().hw_queues);
    }
    if (any_alive) {
      backlog_ns = min_backlog;
    }
    const double predicted_ns =
        static_cast<double>(now.ns) + backlog_ns +
        opts_.slack * static_cast<double>(est.ns);
    decision.predicted_finish =
        SimTime{} + SimDuration::Nanos(static_cast<std::int64_t>(predicted_ns));
    if (decision.predicted_finish > now + t.config.deadline) {
      t.stats.rejected_slo++;
      t.rejected_slo->Increment();
      decision.rule = kServeRejectSlo;
      return decision;
    }
  }

  // Weighted-fair virtual finish time: start no earlier than "now" on the
  // virtual-time axis (an idle tenant does not bank credit from the past),
  // no earlier than the tenant's previous finish, and advance by the job's
  // estimated cost over its weight.
  const double vstart = std::max(static_cast<double>(now.ns), t.vfinish);
  const double fair_key = vstart + static_cast<double>(est.ns) / t.config.weight;

  DispatchHints hints;
  hints.priority = t.config.priority;
  hints.fair_key = fair_key;
  auto id = rt_->Submit(std::move(job), hints);
  if (!id.ok()) {
    t.stats.rejected_infeasible++;
    t.rejected_infeasible->Increment();
    decision.rule = kServeRejectInfeasible;
    return decision;
  }

  t.vfinish = fair_key;
  t.tokens -= 1.0;
  t.inflight++;
  t.stats.admitted++;
  t.admitted->Increment();
  if (admitted_jobs_.size() <= id->value) {
    admitted_jobs_.resize(id->value + 1);
  }
  admitted_jobs_[id->value] =
      Admitted{static_cast<std::uint32_t>(tenant), t.config.deadline};

  decision.rule = kServeAdmit;
  decision.admitted = true;
  decision.job = *id;
  return decision;
}

void ServingLayer::ScheduleArrival(std::size_t tenant, SimTime at,
                                   std::function<dataflow::Job(std::uint64_t)> factory) {
  MEMFLOW_CHECK(tenant < tenants_.size());
  rt_->ScheduleAt(at, [this, tenant, factory = std::move(factory)](SimTime) {
    (void)Offer(tenant, factory(tenants_[tenant].stats.arrived));
  });
}

void ServingLayer::OnJobTerminal(const JobReport& report) {
  if (report.id.value >= admitted_jobs_.size() ||
      admitted_jobs_[report.id.value].tenant == kNoTenant) {
    return;  // not a serving-managed job
  }
  const Admitted& adm = admitted_jobs_[report.id.value];
  Tenant& t = tenants_[adm.tenant];
  MEMFLOW_CHECK(t.inflight > 0);
  t.inflight--;

  ServedJob sj;
  sj.job = report.id;
  sj.tenant = adm.tenant;
  sj.arrival = report.submitted;
  sj.finished = report.finished;
  sj.ok = report.status.ok();
  sj.deadline = adm.deadline;
  for (const TaskReport& tr : report.tasks) {
    sj.work += tr.duration;
  }
  served_.push_back(sj);

  const SimDuration latency = report.finished - report.submitted;
  t.latency_ns->Observe(static_cast<double>(latency.ns));
  class_latency_[static_cast<int>(t.config.slo)]->Observe(
      static_cast<double>(latency.ns));
  if (sj.ok) {
    t.stats.completed++;
    t.completed->Increment();
  } else {
    t.stats.failed++;
    t.failed->Increment();
  }
}

}  // namespace memflow::rts
