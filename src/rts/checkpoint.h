// Copyright (c) memflow authors. MIT license.
//
// Job-level checkpoint/restart (paper §3, Challenge 8, limitation (3):
// "failures may lead to data loss and force applications to stop and
// restart" — the runtime must offer compute- and storage-efficient fault
// tolerance). The JobCheckpointer instruments a job's tasks so that each
// completed task's *output region* is copied to persistent storage; when the
// (re-)submitted job runs again after a failure, checkpointed tasks restore
// their output instead of re-executing.
//
// The checkpointer models the persistent checkpoint store: its catalog and
// data live on a persistent memory device and survive node crashes and
// runtime restarts (a production system would keep the small catalog in a
// persistent root region; here it rides in the checkpointer object, which
// outlives the runtimes under test).
//
// Scope: outputs only. Global Scratch is advisory (re-creatable caches) and
// Global State is transient synchronization — neither is checkpointed, which
// mirrors what dataflow systems actually persist (materialized task outputs).

#ifndef MEMFLOW_RTS_CHECKPOINT_H_
#define MEMFLOW_RTS_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "dataflow/job.h"
#include "region/region_manager.h"
#include "simhw/clock.h"
#include "telemetry/metrics.h"
#include "telemetry/selfprof.h"
#include "telemetry/trace.h"

namespace memflow::rts {

struct CheckpointStats {
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t tasks_restored = 0;
  std::uint64_t bytes_restored = 0;
  SimDuration write_cost;    // charged to the producing tasks
  SimDuration restore_cost;  // charged to the restored tasks
};

class JobCheckpointer {
 public:
  // `device` must be persistent; checkpoints survive its Fail/Recover.
  // `registry` receives checkpoint metrics; nullptr means the default registry.
  JobCheckpointer(simhw::Cluster& cluster, simhw::MemoryDeviceId device,
                  telemetry::Registry* registry = nullptr);

  JobCheckpointer(const JobCheckpointer&) = delete;
  JobCheckpointer& operator=(const JobCheckpointer&) = delete;

  ~JobCheckpointer();

  // Returns `job` with every task body wrapped:
  //  - if a checkpoint exists for (job name, task name), the task restores
  //    its output from it and skips the original body;
  //  - otherwise the body runs, and on success its output is checkpointed.
  // Costs (copy to/from persistent media) are charged to the task.
  dataflow::Job Instrument(dataflow::Job job);

  // Drops all checkpoints for the named job (call after it committed).
  void Discard(const std::string& job_name);

  bool HasCheckpoint(const std::string& job_name, const std::string& task_name) const;
  const CheckpointStats& stats() const { return stats_; }

  // Attaches a clock + tracer so saves/restores appear in the event stream
  // (pass the runtime's: &runtime.clock() and &runtime.tracer()).
  void BindTrace(const simhw::VirtualClock* clock, telemetry::TraceBuffer* tracer);

  // Attaches the runtime's self-profiler so encode/restore host time shows
  // up under the checkpoint phases (pass &runtime.self_profiler()).
  void BindProfiler(telemetry::SelfProfiler* profiler) { profiler_ = profiler; }

 private:
  struct Entry {
    simhw::Extent extent;
    std::uint64_t size = 0;  // payload size (extent may be rounded up)
  };

  static std::string Key(const std::string& job_name, const std::string& task_name) {
    return job_name + "\x1f" + task_name;
  }

  // Store `size` bytes read from `read_from` into a fresh persistent extent.
  Status Save(const std::string& key, const std::vector<std::uint8_t>& payload,
              SimDuration* cost);

  simhw::Cluster* cluster_;
  simhw::MemoryDeviceId device_;
  std::unordered_map<std::string, Entry> catalog_;
  CheckpointStats stats_;
  telemetry::Counter* writes_;
  telemetry::Counter* written_bytes_;
  telemetry::Counter* restores_;
  telemetry::Counter* restored_bytes_;
  const simhw::VirtualClock* clock_ = nullptr;
  telemetry::TraceBuffer* tracer_ = nullptr;
  telemetry::SelfProfiler* profiler_ = nullptr;
};

}  // namespace memflow::rts

#endif  // MEMFLOW_RTS_CHECKPOINT_H_
