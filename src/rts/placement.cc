// Copyright (c) memflow authors. MIT license.

#include "rts/placement.h"

#include <limits>

namespace memflow::rts {

std::string_view PlacementPolicyKindName(PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kRoundRobin:
      return "round-robin";
    case PlacementPolicyKind::kFirstFit:
      return "first-fit";
    case PlacementPolicyKind::kRandom:
      return "random";
    case PlacementPolicyKind::kCostModel:
      return "cost-model";
  }
  return "?";
}

std::vector<simhw::ComputeDeviceId> PlacementPolicy::Eligible(
    const dataflow::TaskProperties& props, const simhw::Cluster& cluster) {
  std::vector<simhw::ComputeDeviceId> out;
  for (const simhw::ComputeDeviceId id : cluster.AllComputeDevices()) {
    const simhw::ComputeDevice& dev = cluster.compute(id);
    if (dev.failed()) {
      continue;
    }
    if (props.compute_device.has_value() && dev.kind() != *props.compute_device) {
      continue;
    }
    out.push_back(id);
  }
  return out;
}

namespace {

class RoundRobinPlacement final : public PlacementPolicy {
 public:
  Result<simhw::ComputeDeviceId> Place(const dataflow::Job& job, dataflow::TaskId task,
                                       std::uint64_t, simhw::Cluster& cluster,
                                       const CostModel&) override {
    const auto eligible = Eligible(job.task(task).props, cluster);
    if (eligible.empty()) {
      return ResourceExhausted("no eligible compute device for '" + job.task(task).name + "'");
    }
    return eligible[next_++ % eligible.size()];
  }
  std::string_view name() const override { return "round-robin"; }

 private:
  std::size_t next_ = 0;
};

class FirstFitPlacement final : public PlacementPolicy {
 public:
  Result<simhw::ComputeDeviceId> Place(const dataflow::Job& job, dataflow::TaskId task,
                                       std::uint64_t, simhw::Cluster& cluster,
                                       const CostModel&) override {
    const auto eligible = Eligible(job.task(task).props, cluster);
    if (eligible.empty()) {
      return ResourceExhausted("no eligible compute device for '" + job.task(task).name + "'");
    }
    return eligible.front();
  }
  std::string_view name() const override { return "first-fit"; }
};

class RandomPlacement final : public PlacementPolicy {
 public:
  explicit RandomPlacement(std::uint64_t seed) : rng_(seed) {}

  Result<simhw::ComputeDeviceId> Place(const dataflow::Job& job, dataflow::TaskId task,
                                       std::uint64_t, simhw::Cluster& cluster,
                                       const CostModel&) override {
    const auto eligible = Eligible(job.task(task).props, cluster);
    if (eligible.empty()) {
      return ResourceExhausted("no eligible compute device for '" + job.task(task).name + "'");
    }
    return eligible[rng_.Below(eligible.size())];
  }
  std::string_view name() const override { return "random"; }

 private:
  Rng rng_;
};

class CostModelPlacement final : public PlacementPolicy {
 public:
  explicit CostModelPlacement(telemetry::Registry* registry)
      : score_ns_(registry->GetHistogram(
            "rts_placement_score_ns",
            "Cost-model predicted completion time of the chosen device",
            telemetry::HistogramSpec{/*first_bound=*/1000.0, /*growth=*/4.0,
                                     /*buckets=*/14})) {}

  Result<simhw::ComputeDeviceId> Place(const dataflow::Job& job, dataflow::TaskId task,
                                       std::uint64_t input_bytes_estimate,
                                       simhw::Cluster& cluster,
                                       const CostModel& model) override {
    const dataflow::TaskProperties& props = job.task(task).props;
    const auto eligible = Eligible(props, cluster);
    simhw::ComputeDeviceId best;
    double best_score = std::numeric_limits<double>::infinity();
    double best_est_ns = 0;
    for (const simhw::ComputeDeviceId id : eligible) {
      auto est = model.Estimate(props, input_bytes_estimate, id);
      if (!est.ok()) {
        continue;  // no satisfying memory from this device
      }
      // Predicted finish time: the device must first drain its committed
      // backlog (spread over its hardware queues), then run this task.
      const simhw::ComputeDevice& dev = cluster.compute(id);
      const double backlog = dev.planned_ns / dev.profile().hw_queues;
      const double score = backlog + static_cast<double>(est->total.ns);
      if (score < best_score) {
        best_score = score;
        best = id;
        best_est_ns = static_cast<double>(est->total.ns);
      }
    }
    if (!best.valid()) {
      return ResourceExhausted("cost model found no feasible device for '" +
                               job.task(task).name + "'");
    }
    // Commit the estimate so subsequent placements see this device busier.
    cluster.compute(best).planned_ns += best_est_ns;
    score_ns_->Observe(best_score);
    return best;
  }
  std::string_view name() const override { return "cost-model"; }

 private:
  telemetry::Histogram* score_ns_;
};

}  // namespace

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(PlacementPolicyKind kind,
                                                     std::uint64_t seed,
                                                     telemetry::Registry* registry) {
  if (registry == nullptr) {
    registry = &telemetry::DefaultRegistry();
  }
  switch (kind) {
    case PlacementPolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPlacement>();
    case PlacementPolicyKind::kFirstFit:
      return std::make_unique<FirstFitPlacement>();
    case PlacementPolicyKind::kRandom:
      return std::make_unique<RandomPlacement>(seed);
    case PlacementPolicyKind::kCostModel:
      return std::make_unique<CostModelPlacement>(registry);
  }
  return nullptr;
}

}  // namespace memflow::rts
