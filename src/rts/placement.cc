// Copyright (c) memflow authors. MIT license.

#include "rts/placement.h"

#include <algorithm>
#include <limits>

namespace memflow::rts {

std::string_view PlacementPolicyKindName(PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kRoundRobin:
      return "round-robin";
    case PlacementPolicyKind::kFirstFit:
      return "first-fit";
    case PlacementPolicyKind::kRandom:
      return "random";
    case PlacementPolicyKind::kCostModel:
      return "cost-model";
  }
  return "?";
}

std::string_view CandidateOutcomeName(CandidateOutcome outcome) {
  switch (outcome) {
    case CandidateOutcome::kChosen:
      return "chosen";
    case CandidateOutcome::kRankedLoser:
      return "ranked-loser";
    case CandidateOutcome::kKindMismatch:
      return "kind-mismatch";
    case CandidateOutcome::kDeviceFailed:
      return "device-failed";
    case CandidateOutcome::kNoFeasibleMemory:
      return "no-feasible-memory";
  }
  return "?";
}

std::vector<simhw::ComputeDeviceId> PlacementPolicy::Eligible(
    const dataflow::TaskProperties& props, const simhw::Cluster& cluster,
    PlacementExplain* explain) {
  std::vector<simhw::ComputeDeviceId> out;
  for (const simhw::ComputeDeviceId id : cluster.AllComputeDevices()) {
    const simhw::ComputeDevice& dev = cluster.compute(id);
    if (dev.failed()) {
      if (explain != nullptr) {
        explain->candidates.push_back(
            {id, CandidateOutcome::kDeviceFailed, 0, 0, 0, 0, "device is down"});
      }
      continue;
    }
    if (props.compute_device.has_value() && dev.kind() != *props.compute_device) {
      if (explain != nullptr) {
        explain->candidates.push_back(
            {id, CandidateOutcome::kKindMismatch, 0, 0, 0, 0,
             std::string("task requires ") +
                 std::string(simhw::ComputeDeviceKindName(*props.compute_device)) +
                 ", device is " + std::string(simhw::ComputeDeviceKindName(dev.kind()))});
      }
      continue;
    }
    out.push_back(id);
  }
  return out;
}

namespace {

// Orders a filled explanation: chosen first, then scored losers by ascending
// score, then rejects; device id breaks ties so the record is deterministic.
void FinalizeExplain(PlacementExplain* explain, std::string_view policy,
                     std::uint64_t input_bytes_estimate) {
  if (explain == nullptr) {
    return;
  }
  explain->policy = policy;
  explain->input_bytes_estimate = input_bytes_estimate;
  std::stable_sort(explain->candidates.begin(), explain->candidates.end(),
                   [](const PlacementCandidate& a, const PlacementCandidate& b) {
                     const auto rank = [](const PlacementCandidate& c) {
                       if (c.outcome == CandidateOutcome::kChosen) return 0;
                       if (c.outcome == CandidateOutcome::kRankedLoser) return 1;
                       return 2;
                     };
                     if (rank(a) != rank(b)) return rank(a) < rank(b);
                     if (a.score != b.score) return a.score < b.score;
                     return a.device.value < b.device.value;
                   });
}

// Explanation terms for the policies that do not consult the cost model: the
// winner is whatever the policy's rule picked; every other eligible device is
// a ranked loser whose detail names the rule.
void ExplainRuleChoice(PlacementExplain* explain, const std::vector<simhw::ComputeDeviceId>& eligible,
                       simhw::ComputeDeviceId chosen, std::string_view rule) {
  if (explain == nullptr) {
    return;
  }
  explain->chosen = chosen;
  for (const simhw::ComputeDeviceId id : eligible) {
    PlacementCandidate c;
    c.device = id;
    if (id == chosen) {
      c.outcome = CandidateOutcome::kChosen;
      c.detail = rule;
    } else {
      c.outcome = CandidateOutcome::kRankedLoser;
      c.detail = std::string("eligible, not selected by ") + std::string(rule);
    }
    explain->candidates.push_back(std::move(c));
  }
}

class RoundRobinPlacement final : public PlacementPolicy {
 public:
  Result<simhw::ComputeDeviceId> Place(const dataflow::Job& job, dataflow::TaskId task,
                                       std::uint64_t input_bytes_estimate,
                                       simhw::Cluster& cluster, const CostModel&,
                                       PlacementExplain* explain) override {
    const auto eligible = Eligible(job.task(task).props, cluster, explain);
    if (eligible.empty()) {
      FinalizeExplain(explain, name(), input_bytes_estimate);
      return ResourceExhausted("no eligible compute device for '" + job.task(task).name + "'");
    }
    const simhw::ComputeDeviceId chosen = eligible[next_++ % eligible.size()];
    ExplainRuleChoice(explain, eligible, chosen, "round-robin rotation");
    FinalizeExplain(explain, name(), input_bytes_estimate);
    return chosen;
  }
  std::string_view name() const override { return "round-robin"; }

 private:
  std::size_t next_ = 0;
};

class FirstFitPlacement final : public PlacementPolicy {
 public:
  Result<simhw::ComputeDeviceId> Place(const dataflow::Job& job, dataflow::TaskId task,
                                       std::uint64_t input_bytes_estimate,
                                       simhw::Cluster& cluster, const CostModel&,
                                       PlacementExplain* explain) override {
    const auto eligible = Eligible(job.task(task).props, cluster, explain);
    if (eligible.empty()) {
      FinalizeExplain(explain, name(), input_bytes_estimate);
      return ResourceExhausted("no eligible compute device for '" + job.task(task).name + "'");
    }
    ExplainRuleChoice(explain, eligible, eligible.front(), "first eligible device");
    FinalizeExplain(explain, name(), input_bytes_estimate);
    return eligible.front();
  }
  std::string_view name() const override { return "first-fit"; }
};

class RandomPlacement final : public PlacementPolicy {
 public:
  explicit RandomPlacement(std::uint64_t seed) : rng_(seed) {}

  Result<simhw::ComputeDeviceId> Place(const dataflow::Job& job, dataflow::TaskId task,
                                       std::uint64_t input_bytes_estimate,
                                       simhw::Cluster& cluster, const CostModel&,
                                       PlacementExplain* explain) override {
    const auto eligible = Eligible(job.task(task).props, cluster, explain);
    if (eligible.empty()) {
      FinalizeExplain(explain, name(), input_bytes_estimate);
      return ResourceExhausted("no eligible compute device for '" + job.task(task).name + "'");
    }
    const simhw::ComputeDeviceId chosen = eligible[rng_.Below(eligible.size())];
    ExplainRuleChoice(explain, eligible, chosen, "seeded random draw");
    FinalizeExplain(explain, name(), input_bytes_estimate);
    return chosen;
  }
  std::string_view name() const override { return "random"; }

 private:
  Rng rng_;
};

class CostModelPlacement final : public PlacementPolicy {
 public:
  explicit CostModelPlacement(telemetry::Registry* registry)
      : score_ns_(registry->GetHistogram(
            "rts_placement_score_ns",
            "Cost-model predicted completion time of the chosen device",
            telemetry::HistogramSpec{/*first_bound=*/1000.0, /*growth=*/4.0,
                                     /*buckets=*/14})) {}

  Result<simhw::ComputeDeviceId> Place(const dataflow::Job& job, dataflow::TaskId task,
                                       std::uint64_t input_bytes_estimate,
                                       simhw::Cluster& cluster, const CostModel& model,
                                       PlacementExplain* explain) override {
    const dataflow::TaskProperties& props = job.task(task).props;
    const auto eligible = Eligible(props, cluster, explain);
    simhw::ComputeDeviceId best;
    double best_score = std::numeric_limits<double>::infinity();
    double best_est_ns = 0;
    for (const simhw::ComputeDeviceId id : eligible) {
      auto est = model.Estimate(props, input_bytes_estimate, id);
      if (!est.ok()) {
        if (explain != nullptr) {
          explain->candidates.push_back({id, CandidateOutcome::kNoFeasibleMemory, 0, 0, 0, 0,
                                         est.status().message()});
        }
        continue;  // no satisfying memory from this device
      }
      // Predicted finish time: the device must first drain its committed
      // backlog (spread over its hardware queues), then run this task. The
      // backlog term is weighted by the task's latency class — an interactive
      // task treats time queued behind others as 4x as expensive as its own
      // runtime, a batch task as half (SloUrgency; kStandard is exactly the
      // pre-SLO score).
      const simhw::ComputeDevice& dev = cluster.compute(id);
      const double backlog =
          dev.planned_ns / dev.profile().hw_queues * SloUrgency(props.slo);
      const double score = backlog + static_cast<double>(est->total.ns);
      if (explain != nullptr) {
        explain->candidates.push_back({id, CandidateOutcome::kRankedLoser, backlog,
                                       static_cast<double>(est->compute.ns),
                                       static_cast<double>(est->memory.ns), score, ""});
      }
      if (score < best_score) {
        best_score = score;
        best = id;
        best_est_ns = static_cast<double>(est->total.ns);
      }
    }
    if (!best.valid()) {
      FinalizeExplain(explain, name(), input_bytes_estimate);
      return ResourceExhausted("cost model found no feasible device for '" +
                               job.task(task).name + "'");
    }
    if (explain != nullptr) {
      explain->chosen = best;
      for (PlacementCandidate& c : explain->candidates) {
        if (c.device == best && c.outcome == CandidateOutcome::kRankedLoser) {
          c.outcome = CandidateOutcome::kChosen;
          c.detail = "lowest predicted completion";
        } else if (c.outcome == CandidateOutcome::kRankedLoser) {
          const double delta = c.score - best_score;
          c.detail = "loses by " + std::to_string(static_cast<long long>(delta)) + " ns";
        }
      }
      FinalizeExplain(explain, name(), input_bytes_estimate);
    }
    // Commit the estimate so subsequent placements see this device busier.
    cluster.compute(best).planned_ns += best_est_ns;
    score_ns_->Observe(best_score);
    return best;
  }
  std::string_view name() const override { return "cost-model"; }

 private:
  telemetry::Histogram* score_ns_;
};

}  // namespace

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(PlacementPolicyKind kind,
                                                     std::uint64_t seed,
                                                     telemetry::Registry* registry) {
  if (registry == nullptr) {
    registry = &telemetry::DefaultRegistry();
  }
  switch (kind) {
    case PlacementPolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPlacement>();
    case PlacementPolicyKind::kFirstFit:
      return std::make_unique<FirstFitPlacement>();
    case PlacementPolicyKind::kRandom:
      return std::make_unique<RandomPlacement>(seed);
    case PlacementPolicyKind::kCostModel:
      return std::make_unique<CostModelPlacement>(registry);
  }
  return nullptr;
}

}  // namespace memflow::rts
