// Copyright (c) memflow authors. MIT license.

#include "rts/profiler.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "common/table.h"
#include "telemetry/export.h"

namespace memflow::rts {

Result<JobProfile> ProfileJob(const Runtime& runtime, dataflow::JobId id) {
  const JobReport& report = runtime.report(id);
  MEMFLOW_ASSIGN_OR_RETURN(const dataflow::Job* job, runtime.GetJob(id));
  if (!report.status.ok()) {
    return FailedPrecondition("job did not finish successfully; profile unavailable");
  }
  const std::size_t n = report.tasks.size();
  MEMFLOW_CHECK(n == job->num_tasks());

  JobProfile profile;
  profile.makespan = report.Makespan();

  // Level-0 aggregates.
  std::set<std::uint32_t> devices;
  for (const TaskReport& t : report.tasks) {
    profile.total_task_time += t.duration;
    profile.total_handover += t.handover_cost;
    devices.insert(t.device.value);
  }
  profile.devices_used = static_cast<int>(devices.size());
  // Capacity = sum of hardware queues across the devices used: a single
  // device can overlap several tasks, so dividing by device count alone
  // would report efficiencies above 1.
  int queue_capacity = 0;
  for (const std::uint32_t d : devices) {
    queue_capacity += runtime.cluster().compute(simhw::ComputeDeviceId(d)).profile().hw_queues;
  }
  if (profile.makespan.ns > 0 && queue_capacity > 0) {
    profile.parallel_efficiency =
        static_cast<double>(profile.total_task_time.ns) /
        (static_cast<double>(profile.makespan.ns) * queue_capacity);
  }

  // Critical path over the DAG: cp(t) = dur + handover + max_succ cp(succ).
  const std::vector<dataflow::TaskId> order = job->TopologicalOrder();
  std::vector<std::int64_t> cp(n, 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::uint32_t t = it->value;
    std::int64_t best_succ = 0;
    for (const dataflow::TaskId s : job->successors(*it)) {
      best_succ = std::max(best_succ, cp[s.value]);
    }
    cp[t] = report.tasks[t].duration.ns + report.tasks[t].handover_cost.ns + best_succ;
  }
  // Walk the path from the heaviest source, marking members.
  std::vector<bool> critical(n, false);
  {
    dataflow::TaskId cursor;
    std::int64_t best = -1;
    for (const dataflow::TaskId s : job->Sources()) {
      if (cp[s.value] > best) {
        best = cp[s.value];
        cursor = s;
      }
    }
    profile.critical_path = SimDuration::Nanos(best);
    while (cursor.valid()) {
      critical[cursor.value] = true;
      dataflow::TaskId next;
      std::int64_t next_best = -1;
      for (const dataflow::TaskId s : job->successors(cursor)) {
        if (cp[s.value] > next_best) {
          next_best = cp[s.value];
          next = s;
        }
      }
      cursor = next;
    }
  }

  // Level-1 lines. Queueing = dispatch - ready, where ready is the job's
  // submission (sources) or the last predecessor's finish + handover.
  for (std::size_t i = 0; i < n; ++i) {
    const TaskReport& t = report.tasks[i];
    SimTime ready = report.submitted;
    for (const dataflow::TaskId p :
         job->predecessors(dataflow::TaskId(static_cast<std::uint32_t>(i)))) {
      const TaskReport& pr = report.tasks[p.value];
      ready = std::max(ready, pr.finish + pr.handover_cost);
    }
    JobProfile::TaskLine line;
    line.name = t.name;
    line.device = runtime.cluster().compute(t.device).name();
    line.queueing = t.start - ready;
    line.duration = t.duration;
    line.handover = t.handover_cost;
    line.zero_copy = t.zero_copy_handover;
    line.on_critical_path = critical[i];
    line.attempts = t.attempts;
    profile.tasks.push_back(std::move(line));
  }
  return profile;
}

std::string RenderProfile(const Runtime& runtime, const JobProfile& profile) {
  std::string out;
  out += "== level 0: job =================================================\n";
  out += "makespan            " + HumanDuration(profile.makespan) + "\n";
  out += "critical path       " + HumanDuration(profile.critical_path) + "\n";
  out += "total task time     " + HumanDuration(profile.total_task_time) + "\n";
  out += "handover copy cost  " + HumanDuration(profile.total_handover) + "\n";
  out += "devices used        " + std::to_string(profile.devices_used) + "\n";
  out += "parallel efficiency " + FormatDouble(profile.parallel_efficiency * 100, 1) + " %\n\n";

  out += "== level 1: tasks ===============================================\n";
  TextTable tasks({"Task", "Device", "Queueing", "Execution", "Handover", "CP", "Att."});
  for (const JobProfile::TaskLine& line : profile.tasks) {
    tasks.AddRow({line.name, line.device, HumanDuration(line.queueing),
                  HumanDuration(line.duration),
                  line.zero_copy ? "zero-copy" : HumanDuration(line.handover),
                  line.on_critical_path ? "*" : "", std::to_string(line.attempts)});
  }
  out += tasks.Render();

  out += "\n== level 2: region classes ======================================\n";
  const region::ManagerStats& stats = runtime.regions().stats();
  TextTable regions({"Region class", "Allocations", "Bytes read", "Bytes written"});
  for (int c = 0; c < region::kNumRegionClasses; ++c) {
    regions.AddRow({std::string(RegionClassName(static_cast<region::RegionClass>(c))),
                    WithThousands(stats.allocations_by_class[c]),
                    HumanBytes(stats.bytes_read_by_class[c]),
                    HumanBytes(stats.bytes_written_by_class[c])});
  }
  out += regions.Render();

  out += "\n== level 3: devices =============================================\n";
  out += runtime.UtilizationReport();
  return out;
}

Result<std::string> ExportChromeTrace(const Runtime& runtime, dataflow::JobId id) {
  const JobReport& report = runtime.report(id);
  if (!report.status.ok()) {
    return FailedPrecondition("job did not finish successfully; no trace");
  }
  // The runtime's tracer already holds every span this job produced — task
  // lifetimes, handovers, migrations, checkpoints — plus the flow arrows
  // linking producers to consumers; export the job's slice of that stream.
  return telemetry::ExportTraceJson(runtime.tracer(), id.value, report.name);
}

}  // namespace memflow::rts
