// Copyright (c) memflow authors. MIT license.
//
// Topology-aware task cost model (§3, Challenges 1–3: "schedule and map tasks
// to different types of devices using cost models that consider topology and
// access paths"). Given a task's declared execution profile and an estimated
// input size, the model predicts how long the task would take on each
// candidate compute device, assuming its memory requests resolve to the best
// satisfying devices from there.

#ifndef MEMFLOW_RTS_COST_MODEL_H_
#define MEMFLOW_RTS_COST_MODEL_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "common/status.h"
#include "dataflow/task.h"
#include "region/properties.h"
#include "simhw/cluster.h"

namespace memflow::rts {

// How heavily placement scoring weighs a device's queued backlog for a task
// of the given latency class. 1.0 for kStandard keeps the pre-SLO scoring
// bit-identical; batch tasks happily queue behind others, interactive tasks
// pay a premium to land on idle devices.
constexpr double SloUrgency(dataflow::SloClass c) {
  switch (c) {
    case dataflow::SloClass::kBatch:
      return 0.5;
    case dataflow::SloClass::kStandard:
      return 1.0;
    case dataflow::SloClass::kInteractive:
      return 4.0;
  }
  return 1.0;
}

struct TaskEstimate {
  SimDuration compute;   // device execution time for the declared work
  SimDuration memory;    // input read + scratch use + output write
  SimDuration total;     // compute + memory (no overlap assumed: conservative)

  // Resolved best memory devices, for introspection.
  simhw::MemoryDeviceId scratch_device;
  simhw::MemoryDeviceId output_device;
};

class CostModel {
 public:
  explicit CostModel(const simhw::Cluster& cluster) : cluster_(&cluster) {}

  // Predicts the runtime of a task with `props` and `input_bytes` of input on
  // `device`. `input_device` is where the input currently (or will) reside;
  // pass an invalid id to have the model assume the best satisfying device.
  Result<TaskEstimate> Estimate(const dataflow::TaskProperties& props,
                                std::uint64_t input_bytes, simhw::ComputeDeviceId device,
                                simhw::MemoryDeviceId input_device = {}) const;

  // Derived sizes from the task's declared profile.
  static std::uint64_t ScratchBytes(const dataflow::TaskProperties& props,
                                    std::uint64_t input_bytes);
  static std::uint64_t OutputBytes(const dataflow::TaskProperties& props,
                                   std::uint64_t input_bytes);
  static double WorkUnits(const dataflow::TaskProperties& props, std::uint64_t input_bytes);

  // --- memoization (DESIGN.md §14) ---------------------------------------------
  //
  // Estimate() is a pure function of (task properties, input bytes, devices,
  // cluster capacity/fault state). The runtime scores every eligible device
  // for every task at admission, and identical tasks dominate real DAGs — so
  // successful estimates are memoized, keyed on
  //   (compute device, input device, input bytes, properties hash, churn epoch).
  // `churn` is a monotonic counter the RegionManager bumps on every event
  // that can change an estimate: allocation, free, migration, device loss
  // (see RegionManager::churn_counter()). A bumped counter invalidates the
  // whole memo on the next lookup — explicit invalidation on region churn.
  //
  // Checks that depend on *compute*-device state (failed, kind mismatch) run
  // before the memo lookup, so compute faults never need an epoch bump.
  // Failed estimates are never cached (their Status message can depend on
  // transient state). The memo is control-thread-only, like Estimate itself.
  void BindInvalidationCounter(const std::atomic<std::uint64_t>* churn) {
    memo_churn_ = churn;
  }
  std::uint64_t memo_hits() const { return memo_hits_; }
  std::uint64_t memo_misses() const { return memo_misses_; }

 private:
  // Cheapest satisfying view from `device`, or an error if none.
  Result<simhw::AccessView> BestView(simhw::ComputeDeviceId device,
                                     const region::Properties& props, std::uint64_t size,
                                     const region::AccessHint& hint) const;

  static std::uint64_t MemoKey(const dataflow::TaskProperties& props,
                               std::uint64_t input_bytes, simhw::ComputeDeviceId device,
                               simhw::MemoryDeviceId input_device);

  const simhw::Cluster* cluster_;

  // Memo state; mutable because Estimate() is logically const. nullptr churn
  // counter (standalone cost models, tests) disables memoization entirely.
  const std::atomic<std::uint64_t>* memo_churn_ = nullptr;
  mutable std::unordered_map<std::uint64_t, TaskEstimate> memo_;
  mutable std::uint64_t memo_epoch_ = 0;
  mutable std::uint64_t memo_hits_ = 0;
  mutable std::uint64_t memo_misses_ = 0;
};

}  // namespace memflow::rts

#endif  // MEMFLOW_RTS_COST_MODEL_H_
