// Copyright (c) memflow authors. MIT license.
//
// Topology-aware task cost model (§3, Challenges 1–3: "schedule and map tasks
// to different types of devices using cost models that consider topology and
// access paths"). Given a task's declared execution profile and an estimated
// input size, the model predicts how long the task would take on each
// candidate compute device, assuming its memory requests resolve to the best
// satisfying devices from there.

#ifndef MEMFLOW_RTS_COST_MODEL_H_
#define MEMFLOW_RTS_COST_MODEL_H_

#include <cstdint>

#include "common/status.h"
#include "dataflow/task.h"
#include "region/properties.h"
#include "simhw/cluster.h"

namespace memflow::rts {

struct TaskEstimate {
  SimDuration compute;   // device execution time for the declared work
  SimDuration memory;    // input read + scratch use + output write
  SimDuration total;     // compute + memory (no overlap assumed: conservative)

  // Resolved best memory devices, for introspection.
  simhw::MemoryDeviceId scratch_device;
  simhw::MemoryDeviceId output_device;
};

class CostModel {
 public:
  explicit CostModel(const simhw::Cluster& cluster) : cluster_(&cluster) {}

  // Predicts the runtime of a task with `props` and `input_bytes` of input on
  // `device`. `input_device` is where the input currently (or will) reside;
  // pass an invalid id to have the model assume the best satisfying device.
  Result<TaskEstimate> Estimate(const dataflow::TaskProperties& props,
                                std::uint64_t input_bytes, simhw::ComputeDeviceId device,
                                simhw::MemoryDeviceId input_device = {}) const;

  // Derived sizes from the task's declared profile.
  static std::uint64_t ScratchBytes(const dataflow::TaskProperties& props,
                                    std::uint64_t input_bytes);
  static std::uint64_t OutputBytes(const dataflow::TaskProperties& props,
                                   std::uint64_t input_bytes);
  static double WorkUnits(const dataflow::TaskProperties& props, std::uint64_t input_bytes);

 private:
  // Cheapest satisfying view from `device`, or an error if none.
  Result<simhw::AccessView> BestView(simhw::ComputeDeviceId device,
                                     const region::Properties& props, std::uint64_t size,
                                     const region::AccessHint& hint) const;

  const simhw::Cluster* cluster_;
};

}  // namespace memflow::rts

#endif  // MEMFLOW_RTS_COST_MODEL_H_
