// Copyright (c) memflow authors. MIT license.
//
// Open-loop multi-tenant serving layer (DESIGN.md §15): the admission front
// door in front of Runtime::Submit for continuously arriving load. Each
// tenant gets a token-bucket quota, a weighted-fair share, a dispatch
// priority, and an SLO (latency class + per-job deadline); every arrival is
// admitted, rejected, or shed by exactly one rule from a stable catalog:
//
//   serve-admit              admitted (token spent, WFQ key assigned)
//   serve-reject-quota       token bucket empty at arrival
//   serve-shed-backpressure  tenant already at its in-flight cap
//   serve-reject-slo         the SLO model predicts a deadline violation
//                            (device backlog + conservative job estimate)
//   serve-reject-infeasible  Runtime::Submit itself rejected the job
//                            (verifier / placement)
//
// Admission is decided once, at arrival, on the virtual timeline; the
// resulting DispatchHints (priority + weighted-fair virtual finish key) are
// the only trace the decision leaves on the dispatch hot path — per-event
// queue ordering reads two fields from the queue entry, no maps, no tenant
// lookups. Everything here runs on the control thread in virtual-time event
// order, so an arrival-driven run is as deterministic as a closed batch.

#ifndef MEMFLOW_RTS_SERVING_H_
#define MEMFLOW_RTS_SERVING_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rts/runtime.h"

namespace memflow::rts {

// Stable admission rule ids (catalogued in DESIGN.md §15).
inline constexpr char kServeAdmit[] = "serve-admit";
inline constexpr char kServeRejectQuota[] = "serve-reject-quota";
inline constexpr char kServeRejectSlo[] = "serve-reject-slo";
inline constexpr char kServeRejectInfeasible[] = "serve-reject-infeasible";
inline constexpr char kServeShedBackpressure[] = "serve-shed-backpressure";

struct TenantConfig {
  std::string name;

  // Weighted-fair share of dispatch: a tenant with weight 2 drains twice the
  // work of a weight-1 tenant while both are backlogged. Must be > 0.
  double weight = 1.0;

  // Dispatch priority (DispatchHints::priority): higher jumps device queues.
  int priority = 0;

  // Token bucket: one token per admitted job, refilled continuously on the
  // virtual clock. The bucket starts (and is capped at) `burst_tokens`.
  double tokens_per_sec = 1e6;
  double burst_tokens = 1e6;

  // Backpressure: shed arrivals while this many of the tenant's jobs are
  // still in flight. 0 = no cap.
  std::size_t max_inflight = 0;

  // Per-job deadline, measured from arrival. 0 disables the SLO model for
  // this tenant (jobs are still classed for placement and histograms).
  SimDuration deadline;

  // Latency class stamped onto every task of the tenant's jobs.
  dataflow::SloClass slo = dataflow::SloClass::kStandard;
};

// Monotonic per-tenant admission/outcome counts (mirrored into telemetry as
// serving_jobs_total{tenant, outcome}).
struct TenantStats {
  std::uint64_t arrived = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected_slo = 0;
  std::uint64_t rejected_infeasible = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;

  std::uint64_t Rejections() const {
    return rejected_quota + rejected_slo + rejected_infeasible + shed;
  }
};

// One admitted job that reached a terminal state, in completion order. The
// oracle's sim-slo invariant audits `finished - arrival` against `deadline`;
// sim-fairness sums `work` per tenant.
struct ServedJob {
  dataflow::JobId job;
  std::size_t tenant = 0;
  SimTime arrival;            // == JobReport::submitted
  SimTime finished;
  bool ok = false;
  SimDuration deadline;       // 0 = tenant had no deadline
  SimDuration work;           // sum of charged task durations
};

struct AdmissionDecision {
  const char* rule = kServeAdmit;  // one of the catalog ids above
  bool admitted = false;
  dataflow::JobId job;             // valid iff admitted
  // The SLO model's predicted completion time (admitted or rejected-slo;
  // zero when the tenant has no deadline).
  SimTime predicted_finish;
};

struct ServingOptions {
  // Multiplier on the conservative job estimate inside the deadline
  // prediction; > 1 rejects earlier.
  double slack = 1.0;
};

class ServingLayer {
 public:
  using Options = ServingOptions;

  // Installs itself as the runtime's job observer (the runtime supports one;
  // a serving runtime's completions are owned by its serving layer).
  explicit ServingLayer(Runtime& rt, Options opts = {});

  ServingLayer(const ServingLayer&) = delete;
  ServingLayer& operator=(const ServingLayer&) = delete;

  // Registers a tenant; returns its index. All tenants must be added before
  // the first Offer/ScheduleArrival.
  std::size_t AddTenant(TenantConfig config);

  // The admission front door: decides the fate of one arriving job at the
  // current virtual time and, if admitted, submits it with the tenant's
  // dispatch hints. Tasks are stamped with the tenant's SloClass first, so
  // the class reaches the cost model and placement.
  AdmissionDecision Offer(std::size_t tenant, dataflow::Job job);

  // Open-loop driver: schedules an arrival at `at` on the runtime's virtual
  // timeline; at that instant `factory` builds the job (receiving the
  // tenant's arrival index) and the result goes through Offer.
  void ScheduleArrival(std::size_t tenant, SimTime at,
                       std::function<dataflow::Job(std::uint64_t)> factory);

  // Conservative whole-job cost bound: per task, the cheapest eligible
  // device's estimate (input sizes forward-propagated as at admission),
  // summed over all tasks — an overestimate of the critical path. Returns 0
  // if any task has no feasible estimate (the SLO model then abstains).
  SimDuration EstimateJobCost(const dataflow::Job& job) const;

  std::size_t num_tenants() const { return tenants_.size(); }
  const TenantConfig& config(std::size_t tenant) const {
    return tenants_[tenant].config;
  }
  const TenantStats& stats(std::size_t tenant) const {
    return tenants_[tenant].stats;
  }
  // Current token balance (as of the last refill; for tests).
  double tokens(std::size_t tenant) const { return tenants_[tenant].tokens; }
  std::size_t inflight(std::size_t tenant) const {
    return tenants_[tenant].inflight;
  }
  // Terminal admitted jobs in completion order.
  const std::vector<ServedJob>& served() const { return served_; }

 private:
  struct Tenant {
    TenantConfig config;
    TenantStats stats;
    // Token bucket (virtual-time refill).
    double tokens = 0.0;
    SimTime last_refill;
    // Weighted-fair virtual finish time of the tenant's last admitted job.
    double vfinish = 0.0;
    std::size_t inflight = 0;
    // Pre-resolved instrument handles (one registry lookup per outcome per
    // tenant, at AddTenant).
    telemetry::Counter* admitted = nullptr;
    telemetry::Counter* rejected_quota = nullptr;
    telemetry::Counter* rejected_slo = nullptr;
    telemetry::Counter* rejected_infeasible = nullptr;
    telemetry::Counter* shed = nullptr;
    telemetry::Counter* completed = nullptr;
    telemetry::Counter* failed = nullptr;
    telemetry::Histogram* latency_ns = nullptr;
  };

  // Admitted-job bookkeeping, dense by JobId::value (ids start at 1 and grow
  // by one per submit — no map on the completion path).
  struct Admitted {
    std::uint32_t tenant = kNoTenant;
    SimDuration deadline;
  };
  static constexpr std::uint32_t kNoTenant = 0xffffffffu;

  void RefillTokens(Tenant& t, SimTime now);
  void OnJobTerminal(const JobReport& report);

  Runtime* rt_;
  Options opts_;
  std::vector<Tenant> tenants_;
  std::vector<Admitted> admitted_jobs_;  // by JobId::value
  std::vector<ServedJob> served_;
  // Per-class latency histograms, resolved once.
  telemetry::Histogram* class_latency_[3] = {nullptr, nullptr, nullptr};
};

}  // namespace memflow::rts

#endif  // MEMFLOW_RTS_SERVING_H_
