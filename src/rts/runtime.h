// Copyright (c) memflow authors. MIT license.
//
// The memflow runtime system (§2.3): the component the paper says must
// (1) determine at runtime which physical memory device best fits each task's
// declared requirements, (2) allocate the Memory Regions tasks request,
// (3) de-allocate regions after the last owning task finishes, and
// (4) schedule tasks resource-aware.
//
// Execution is discrete-event over virtual time: task bodies run real code
// against real bytes; every memory access and compute step charges simulated
// cost, and the scheduler advances the virtual clock by those costs. Faults
// (node crashes) are injected on the same timeline.
//
// The executor is a conservative parallel discrete-event simulator
// (DESIGN.md §8): all task bodies dispatchable at one virtual-time step are
// *staged*, then run concurrently on a host worker pool, and their results
// (charged costs, outputs, telemetry, completion events) are committed
// serially in (device id, job, task id) order — so reports are identical at
// every worker count.
//
// Lifecycle of a task under this runtime:
//   Submit -> admission plan (placement + global regions) -> wait for inputs
//   -> queue on planned device -> stage (context built) -> body runs on the
//   worker pool, charges cost -> commit -> completion event at now+cost
//   -> scratch freed, inputs released, output ownership transferred/shared
//   to successors -> successors ready.

#ifndef MEMFLOW_RTS_RUNTIME_H_
#define MEMFLOW_RTS_RUNTIME_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/verifier.h"
#include "common/arena.h"
#include "common/status.h"
#include "common/worker_pool.h"
#include "dataflow/context.h"
#include "dataflow/job.h"
#include "region/region_manager.h"
#include "rts/cost_model.h"
#include "rts/placement.h"
#include "simhw/clock.h"
#include "simhw/cluster.h"
#include "simhw/fault.h"
#include "telemetry/metrics.h"
#include "telemetry/selfprof.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace memflow::rts {

// How admission treats the static verifier (analysis::Verify).
enum class VerifyMode {
  kOff,      // do not run the verifier
  kWarn,     // run and log diagnostics; never reject
  kEnforce,  // reject jobs with error-severity diagnostics (default)
};

struct RuntimeOptions {
  PlacementPolicyKind policy = PlacementPolicyKind::kCostModel;
  region::PlacementConfig region_config;
  std::uint64_t seed = 42;
  // Attempts per task before the whole job fails (1 = no retry).
  int max_task_attempts = 2;
  // Delay before a failed attempt is re-queued.
  SimDuration retry_backoff = SimDuration::Micros(10);
  // Static ownership/property verification at admission. While not kOff, the
  // executor also cross-checks the statically computed ownership states at
  // every input access, so the analyzer and the executor validate each other.
  VerifyMode verify = VerifyMode::kEnforce;
  // Host threads that run task bodies during the parallel phase. 0 picks
  // hardware_concurrency; 1 runs bodies serially (same staging/commit path,
  // so results are identical — only wall-clock time changes).
  int worker_threads = 0;
  // Metrics destination; nullptr means the process-wide default registry.
  telemetry::Registry* registry = nullptr;
  // Span/event destination. nullptr means the runtime owns a private buffer
  // (job ids restart at 1 per runtime, so sharing a process-wide tracer
  // between runtimes would interleave unrelated jobs under the same id).
  telemetry::TraceBuffer* tracer = nullptr;
  // Control-plane self-profiler (DESIGN.md §13). nullptr + self_profile=true
  // means the runtime owns one; pass a profiler to share it across runtimes
  // or read it after the runtime is gone.
  telemetry::SelfProfiler* profiler = nullptr;
  // Master switch for the owned profiler; a passed-in `profiler` keeps its
  // own enabled state.
  bool self_profile = true;
  // Time-series ring ticked from the dispatch loop on the *virtual* clock
  // every `snapshot_interval` (plus once after the loop drains), so snapshot
  // times are deterministic at every worker count. nullptr disables ticking.
  telemetry::SnapshotRing* snapshot_ring = nullptr;
  SimDuration snapshot_interval = SimDuration::Millis(1);
  // Recycle TaskContexts (and their internal vectors) across dispatches
  // instead of heap-allocating one per staged body (DESIGN.md §14). Purely a
  // host-side optimization: reports and fingerprints are bit-identical with
  // pools on or off — the determinism test holds the runtime to that.
  bool hot_path_pools = true;
};

struct TaskReport {
  dataflow::TaskId task;
  std::string name;
  simhw::ComputeDeviceId device;       // where it actually ran
  SimTime start;
  SimTime finish;
  SimDuration duration;                // charged simulated time
  region::RegionId output;             // invalid if none produced
  SimDuration handover_cost;           // cost of moving the output onward
  bool zero_copy_handover = false;     // handover was pure ownership transfer
  int attempts = 0;
  Status status;
};

struct JobReport {
  dataflow::JobId id;
  std::string name;
  SimTime submitted;
  SimTime finished;
  Status status;                        // OK iff every task succeeded
  std::vector<TaskReport> tasks;
  // Sink outputs retained after job teardown (readable via JobPrincipal()).
  std::vector<region::RegionId> outputs;

  SimDuration Makespan() const { return finished - submitted; }
};

// One recorded task-placement decision: where the policy put the task and
// the full ranked candidate breakdown behind the choice. Recorded at
// admission for every task, and again (replan=true) when a failed attempt
// forces re-placement.
struct PlacementDecision {
  dataflow::TaskId task;
  std::string task_name;
  SimTime at;          // virtual time of the decision
  bool replan = false; // re-placement after a failed attempt
  PlacementExplain explain;
};

// Dispatch-ordering hints for one job, resolved *once* at admission (by the
// serving layer's quota/fairness machinery, or by any caller) and copied into
// each queue entry — the per-event hot path never looks anything up. Default
// hints order every device queue exactly FIFO, so Submit(job) behaves as it
// always did.
struct DispatchHints {
  // Higher dispatches first. Ties fall through to fair_key, then to enqueue
  // order.
  int priority = 0;
  // Weighted-fair virtual finish time (serving.h): among equal priorities the
  // smallest key dispatches first. 0 for all jobs degrades to FIFO.
  double fair_key = 0.0;
};

struct RuntimeStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_rejected = 0;   // failed admission (placement infeasible)
  std::uint64_t jobs_rejected_by_verifier = 0;  // subset: static analysis
  std::uint64_t tasks_executed = 0;
  std::uint64_t task_retries = 0;
  std::uint64_t zero_copy_handovers = 0;
  std::uint64_t copied_handovers = 0;
  // Observed same-batch task pairs the static MHP analysis did not predict
  // (executor cross-check; must stay 0 — the sim-mhp invariant asserts it).
  std::uint64_t mhp_divergences = 0;
};

class Runtime {
 public:
  explicit Runtime(simhw::Cluster& cluster, RuntimeOptions options = {});

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Admits a job: validates the DAG, plans placement for every task, and
  // allocates the job's Global State / Global Scratch. Rejected jobs consume
  // no resources. The job starts once RunToCompletion() is called.
  Result<dataflow::JobId> Submit(dataflow::Job job);

  // Same, with explicit dispatch-ordering hints (priority + weighted-fair
  // key). Submit(job) is Submit(job, {}) — plain FIFO.
  Result<dataflow::JobId> Submit(dataflow::Job job, const DispatchHints& hints);

  // Drives the event loop until every admitted job finished or failed.
  Status RunToCompletion();

  // Schedules `fn` on the runtime's virtual timeline; it runs serially inside
  // the dispatch loop at exactly `at` (which must not be in the past). This
  // is the open-loop front door's entry point: an admission layer schedules
  // arrival events that Submit() jobs mid-run, and RunToCompletion() drains
  // them like any other event — deterministically at every worker count.
  void ScheduleAt(SimTime at, std::function<void(SimTime)> fn);

  // Observer called exactly once per admitted job, right after its report is
  // final (finished or failed), on the control thread in virtual-time order.
  // The serving layer uses it for latency histograms and in-flight tracking.
  void SetJobObserver(std::function<void(const JobReport&)> observer) {
    job_observer_ = std::move(observer);
  }

  // Convenience: Submit + RunToCompletion + report.
  Result<JobReport> SubmitAndRun(dataflow::Job job);

  // Registers a fault schedule to be applied on the virtual timeline.
  void AttachFaultInjector(simhw::FaultInjector* injector);

  // --- introspection ------------------------------------------------------------

  const JobReport& report(dataflow::JobId id) const;
  // The admitted job's DAG (valid for the runtime's lifetime).
  Result<const dataflow::Job*> GetJob(dataflow::JobId id) const;
  region::Principal JobPrincipal(dataflow::JobId id) const;
  // Verifier findings for the most recent Submit() (admitted or rejected).
  const analysis::Report& last_verify_report() const { return last_verify_report_; }
  // Verifier findings recorded at admission for a specific admitted job
  // (empty report when verify was kOff).
  const analysis::Report& VerifyReportOf(dataflow::JobId id) const;
  // Task pairs of `id` that actually shared a parallel batch, in commit
  // order. Recorded for parallel-safe jobs whenever two of their bodies are
  // staged at one virtual-time step — identically at every worker count —
  // and cross-checked against the static MHP prediction (stats().
  // mhp_divergences counts the misses).
  const std::vector<std::pair<dataflow::TaskId, dataflow::TaskId>>&
  ObservedConcurrentPairs(dataflow::JobId id) const;
  region::RegionManager& regions() { return regions_; }
  const region::RegionManager& regions() const { return regions_; }
  simhw::VirtualClock& clock() { return clock_; }
  simhw::Cluster& cluster() { return *cluster_; }
  const simhw::Cluster& cluster() const { return *cluster_; }
  const CostModel& cost_model() const { return model_; }
  const RuntimeStats& stats() const { return stats_; }
  // Resolved size of the body worker pool (>= 1).
  int worker_threads() const { return worker_threads_; }
  // The event stream every layer below this runtime reports spans into.
  telemetry::TraceBuffer& tracer() { return *tracer_; }
  const telemetry::TraceBuffer& tracer() const { return *tracer_; }
  telemetry::Registry& metrics() { return *registry_; }
  const telemetry::Registry& metrics() const { return *registry_; }
  // Where the runtime itself spends host time, by dispatch-loop phase.
  telemetry::SelfProfiler& self_profiler() { return *profiler_; }
  const telemetry::SelfProfiler& self_profiler() const { return *profiler_; }

  // Every task-placement decision made for `id` (admission order, then any
  // re-placements), each with its ranked per-device score breakdown.
  const std::vector<PlacementDecision>& PlacementLog(dataflow::JobId id) const;

  // Why a region lives where it lives: ranked per-memory-device breakdown of
  // the region's recorded allocation request. Delegates to the region manager.
  Result<region::RegionPlacementExplain> ExplainPlacement(region::RegionId id) const {
    return regions_.ExplainPlacement(id);
  }

  // Column report of per-device memory utilization and traffic.
  std::string UtilizationReport() const;

  // Frees a finished job's retained sink outputs.
  Status ReleaseJobOutputs(dataflow::JobId id);

 private:
  struct TaskExec {
    enum class State { kWaiting, kQueued, kRunning, kDone, kFailed };

    State state = State::kWaiting;
    simhw::ComputeDeviceId planned;
    std::vector<region::RegionId> inputs;
    std::vector<region::RegionId> scratch;
    region::RegionId output;
    int remaining_inputs = 0;          // undelivered predecessor outputs
    int attempts = 0;
    std::uint64_t est_input_bytes = 0;
    SimDuration duration;
    SimTime ready;                     // when the task was last enqueued
    SimTime arrival;                   // when it was *first* enqueued; the gap
    bool arrived = false;              // to `ready` is retry/fallback stall
    // Flow ids opened by producers' handovers, closed when this task runs.
    std::vector<std::uint64_t> pending_flows;
    TaskReport report;
  };

  struct JobExec {
    dataflow::JobId id;
    std::size_t index = 0;  // position in jobs_
    dataflow::Job job;
    analysis::Report verify_report;  // static ownership states for cross-check
    JobReport report;
    std::vector<TaskExec> tasks;
    region::RegionId state_region;
    region::RegionId scratch_region;
    std::size_t remaining_tasks = 0;
    bool finished = false;
    bool failed = false;
    // Decision log for PlacementLog(): admission placements, then replans.
    std::vector<PlacementDecision> placement_log;
    // Task pairs that shared a parallel batch (see ObservedConcurrentPairs).
    std::vector<std::pair<dataflow::TaskId, dataflow::TaskId>> observed_concurrent;
    // Whether this job's task bodies may run concurrently with each other.
    // False when tasks share mutable regions (Global State/Scratch) or an
    // edge declares writes_input — such a job's same-step bodies execute as
    // one serial chain (still concurrent with *other* jobs' bodies; cross-job
    // region sharing is impossible by construction).
    bool parallel_safe = true;
    // Dispatch-ordering hints, fixed at admission (see DispatchHints).
    DispatchHints hints;

    explicit JobExec(dataflow::JobId job_id, dataflow::Job j)
        : id(job_id), job(std::move(j)) {}
  };

  // One staged task body, built serially at dispatch and executed during the
  // parallel phase of the current virtual-time step.
  struct PendingBody {
    std::size_t job_index = 0;
    dataflow::TaskId task;
    simhw::ComputeDeviceId device;
    std::unique_ptr<dataflow::TaskContext> ctx;
    Status result;
  };

  // One queued task on a device: the job's admission-time hints are copied in
  // so ordering needs no job lookup, and `seq` (a per-device enqueue counter)
  // makes equal-hint ordering exactly FIFO — which is why default-hint
  // workloads keep their pre-serving fingerprints bit-identical.
  struct QueueEntry {
    int priority = 0;
    double fair_key = 0.0;
    std::uint64_t seq = 0;
    std::size_t job_index = 0;
    dataflow::TaskId task;
  };
  // True when `a` must dispatch before `b`: priority desc, fair_key asc,
  // enqueue order asc. A strict weak order on distinct seqs, so the heap pop
  // sequence is deterministic.
  static bool PopsBefore(const QueueEntry& a, const QueueEntry& b) {
    if (a.priority != b.priority) {
      return a.priority > b.priority;
    }
    if (a.fair_key != b.fair_key) {
      return a.fair_key < b.fair_key;
    }
    return a.seq < b.seq;
  }

  // Per compute device scheduler state, indexed by ComputeDeviceId::value
  // (ids are dense from 0). Holds the run queue (a binary heap in PopsBefore
  // order) plus the pre-resolved instrument handles, so the dispatch hot path
  // does zero map lookups.
  struct DeviceExec {
    std::vector<QueueEntry> queue;
    std::uint64_t next_seq = 0;
    SimDuration busy;
    telemetry::Counter* tasks_executed = nullptr;
    telemetry::Gauge* queue_depth = nullptr;
  };

  region::Principal JobPrincipalFor(const JobExec& exec) const {
    return region::Principal{exec.id.value, 0};
  }
  region::Principal TaskPrincipal(const JobExec& exec, dataflow::TaskId task) const {
    return region::Principal{exec.id.value, static_cast<std::uint64_t>(task.value) + 1};
  }

  // Admission: static placement plan, input-size estimates, global regions.
  Status Plan(JobExec& exec);

  void EnqueueTask(JobExec& exec, dataflow::TaskId task);
  void PumpDevice(simhw::ComputeDeviceId device);
  // Serial begin-half of dispatch: claims the device slot, builds the
  // TaskContext, and appends the body to the current batch.
  void StageDispatch(JobExec& exec, dataflow::TaskId task);
  // Runs every staged body (worker pool when worker_threads > 1), then
  // commits results in deterministic (device, job, task) order.
  void ExecuteBatch();
  void RunBody(PendingBody& body);
  void CommitBody(PendingBody& body);
  void OnTaskComplete(JobExec& exec, dataflow::TaskId task);
  void OnAttemptFailed(JobExec& exec, dataflow::TaskId task, const Status& error);
  Status HandoverOutput(JobExec& exec, dataflow::TaskId task);
  // Opens a producer->consumer flow arrow; closed when the consumer
  // dispatches. `kind` names the edge mechanics (transfer/share/control/sink)
  // and is recorded, with the edge endpoints and handover cost, as flow args
  // so the trace alone suffices to rebuild the executed DAG.
  void BeginHandoverFlow(JobExec& exec, dataflow::TaskId producer, dataflow::TaskId consumer,
                         std::string_view kind);
  void DeliverInput(JobExec& exec, dataflow::TaskId task);
  void FinishJob(JobExec& exec);
  void FailJob(JobExec& exec, const Status& error);
  void ApplyFaultsDue(SimTime now);
  DeviceExec& device_exec(simhw::ComputeDeviceId device);
  void UpdateQueueDepth(DeviceExec& de);
  // Publishes on-demand gauges (self-profiler, trace health) and takes one
  // snapshot-ring entry at the current virtual time.
  void TickSnapshotRing();

  struct Instruments {
    telemetry::Counter* jobs_submitted = nullptr;
    telemetry::Counter* jobs_completed = nullptr;
    telemetry::Counter* jobs_failed = nullptr;
    telemetry::Counter* jobs_rejected = nullptr;
    telemetry::Counter* task_retries = nullptr;
    telemetry::Counter* placement_decisions = nullptr;
    telemetry::Counter* placement_fallbacks = nullptr;
    telemetry::Counter* handovers_zero_copy = nullptr;
    telemetry::Counter* handovers_copied = nullptr;
    telemetry::Histogram* queue_wait_ns = nullptr;
    telemetry::Histogram* task_duration_ns = nullptr;
    telemetry::Histogram* admission_verify_ns = nullptr;
  };

  simhw::Cluster* cluster_;
  RuntimeOptions options_;
  telemetry::Registry* registry_;
  std::unique_ptr<telemetry::TraceBuffer> owned_tracer_;
  telemetry::TraceBuffer* tracer_;
  std::unique_ptr<telemetry::SelfProfiler> owned_profiler_;
  telemetry::SelfProfiler* profiler_;
  SimTime next_snapshot_;  // next snapshot_ring tick (virtual time)
  region::RegionManager regions_;
  CostModel model_;
  std::unique_ptr<PlacementPolicy> policy_;
  simhw::VirtualClock clock_;
  simhw::EventQueue events_;
  simhw::FaultInjector* faults_ = nullptr;
  bool fault_events_scheduled_ = false;

  std::vector<std::unique_ptr<JobExec>> jobs_;
  std::vector<DeviceExec> device_execs_;  // by ComputeDeviceId::value
  // Bodies staged at the current virtual-time step, awaiting ExecuteBatch.
  std::vector<PendingBody> batch_;
  // Hot-path recycling (DESIGN.md §14). active_batch_ is the batch currently
  // executing (swapped from batch_; kept as a member so its capacity
  // survives); ctx_pool_ holds retired TaskContexts for Reset()-reuse;
  // chain_storage_/chain_of_job_ are the pre-sized dense replacements for the
  // per-batch chain map (chain_of_job_ is indexed by job index, kNoChain
  // meaning unassigned, and only touched entries are reset after each batch).
  // arena_ backs per-dispatch scratch (commit order) and is reset once per
  // dispatch-loop iteration.
  std::vector<PendingBody> active_batch_;
  std::vector<std::unique_ptr<dataflow::TaskContext>> ctx_pool_;
  std::vector<std::vector<std::size_t>> chain_storage_;
  static constexpr std::uint32_t kNoChain = 0xffffffffu;
  std::vector<std::uint32_t> chain_of_job_;
  MonotonicArena arena_;
  int worker_threads_ = 1;                // resolved from options
  std::unique_ptr<WorkerPool> pool_;      // nullptr when worker_threads_ == 1
  RuntimeStats stats_;
  Instruments instruments_;
  analysis::Report last_verify_report_;
  std::function<void(const JobReport&)> job_observer_;
  std::uint32_t next_job_id_ = 1;
};

}  // namespace memflow::rts

#endif  // MEMFLOW_RTS_RUNTIME_H_
