// Copyright (c) memflow authors. MIT license.

#include "rts/checkpoint.h"

#include "dataflow/context.h"

#include "common/log.h"

namespace memflow::rts {

namespace {
// Trace track for checkpoint instants, separate from device and migration lanes.
constexpr std::uint64_t kCheckpointTrack = 1001;
}  // namespace

JobCheckpointer::JobCheckpointer(simhw::Cluster& cluster, simhw::MemoryDeviceId device,
                                 telemetry::Registry* registry)
    : cluster_(&cluster), device_(device) {
  MEMFLOW_CHECK_MSG(cluster.memory(device).profile().persistent,
                    "checkpoints require persistent media");
  telemetry::Registry& reg =
      registry != nullptr ? *registry : telemetry::DefaultRegistry();
  writes_ = reg.GetCounter("checkpoint_writes_total", "Task outputs checkpointed");
  written_bytes_ =
      reg.GetCounter("checkpoint_written_bytes_total", "Bytes written to checkpoints");
  restores_ =
      reg.GetCounter("checkpoint_restores_total", "Tasks restored from checkpoints");
  restored_bytes_ = reg.GetCounter("checkpoint_restored_bytes_total",
                                   "Bytes restored from checkpoints");
}

void JobCheckpointer::BindTrace(const simhw::VirtualClock* clock,
                                telemetry::TraceBuffer* tracer) {
  clock_ = clock;
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    tracer_->SetTrackName(kCheckpointTrack, "checkpointer");
  }
}

JobCheckpointer::~JobCheckpointer() {
  for (const auto& [key, entry] : catalog_) {
    if (entry.size > 0) {
      (void)cluster_->memory(device_).Free(entry.extent);
    }
  }
}

bool JobCheckpointer::HasCheckpoint(const std::string& job_name,
                                    const std::string& task_name) const {
  return catalog_.contains(Key(job_name, task_name));
}

void JobCheckpointer::Discard(const std::string& job_name) {
  const std::string prefix = job_name + "\x1f";
  for (auto it = catalog_.begin(); it != catalog_.end();) {
    if (it->first.starts_with(prefix)) {
      if (it->second.size > 0) {
        (void)cluster_->memory(device_).Free(it->second.extent);
      }
      it = catalog_.erase(it);
    } else {
      ++it;
    }
  }
}

Status JobCheckpointer::Save(const std::string& key, const std::vector<std::uint8_t>& payload,
                             SimDuration* cost) {
  Entry entry;
  entry.size = payload.size();
  *cost = SimDuration{};
  if (!payload.empty()) {
    MEMFLOW_ASSIGN_OR_RETURN(entry.extent,
                             cluster_->memory(device_).Allocate(payload.size()));
    MEMFLOW_ASSIGN_OR_RETURN(
        *cost, cluster_->memory(device_).Write(entry.extent, 0, payload.data(),
                                               payload.size()));
  }
  catalog_[key] = entry;
  stats_.checkpoints_written++;
  stats_.checkpoint_bytes += payload.size();
  stats_.write_cost += *cost;
  writes_->Increment();
  written_bytes_->Increment(payload.size());
  return OkStatus();
}

dataflow::Job JobCheckpointer::Instrument(dataflow::Job job) {
  const std::string job_name = job.name();
  for (std::size_t i = 0; i < job.num_tasks(); ++i) {
    dataflow::TaskSpec& spec = job.task(dataflow::TaskId(static_cast<std::uint32_t>(i)));
    const std::string key = Key(job_name, spec.name);
    dataflow::TaskFn original = std::move(spec.fn);
    spec.fn = [this, key, original = std::move(original)](
                  dataflow::TaskContext& ctx) -> Status {
      auto it = catalog_.find(key);
      if (it != catalog_.end()) {
        // Restore: skip execution, rebuild the output from the checkpoint.
        telemetry::PhaseTimer restore_timer(profiler_,
                                            telemetry::Phase::kCheckpointRestore);
        SimDuration restore_cost;
        if (it->second.size > 0) {
          std::vector<std::uint8_t> payload(it->second.size);
          MEMFLOW_ASSIGN_OR_RETURN(
              SimDuration read_cost,
              cluster_->memory(device_).Read(it->second.extent, 0, payload.data(),
                                             payload.size()));
          ctx.Charge(read_cost);
          stats_.restore_cost += read_cost;
          restore_cost += read_cost;
          MEMFLOW_ASSIGN_OR_RETURN(region::RegionId out,
                                   ctx.AllocateOutput(payload.size()));
          MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc, ctx.OpenAsync(out));
          acc.EnqueueWrite(0, payload.data(), payload.size());
          MEMFLOW_ASSIGN_OR_RETURN(SimDuration write_cost, acc.Drain());
          ctx.Charge(write_cost);
          stats_.restore_cost += write_cost;
          restore_cost += write_cost;
          stats_.bytes_restored += payload.size();
        }
        stats_.tasks_restored++;
        restores_->Increment();
        restored_bytes_->Increment(it->second.size);
        // Staged, not emitted: bodies run in the parallel phase, so the event
        // reaches the ring at commit (deterministic order, job id filled in).
        telemetry::TraceEvent span;
        span.type = telemetry::TraceEventType::kSpan;
        span.name = "checkpoint restore";
        span.category = "checkpoint";
        span.track = kCheckpointTrack;
        span.dur = restore_cost;
        span.args = {{"task", std::to_string(ctx.self().actor - 1), /*quoted=*/false},
                     {"bytes", std::to_string(it->second.size), /*quoted=*/false},
                     {"checkpoint_ns", std::to_string(restore_cost.ns),
                      /*quoted=*/false}};
        ctx.StageTrace(std::move(span));
        return OkStatus();
      }

      MEMFLOW_RETURN_IF_ERROR(original(ctx));

      // Checkpoint the produced output (or an empty marker for outputless
      // tasks, so they are skipped on restart too).
      telemetry::PhaseTimer encode_timer(profiler_, telemetry::Phase::kCheckpointEncode);
      std::vector<std::uint8_t> payload;
      SimDuration ckpt_cost;
      if (ctx.output().valid()) {
        auto info = ctx.regions().Info(ctx.output());
        if (info.ok()) {
          payload.resize(info->size);
          MEMFLOW_ASSIGN_OR_RETURN(region::AsyncAccessor acc, ctx.OpenAsync(ctx.output()));
          acc.EnqueueRead(0, payload.data(), payload.size());
          MEMFLOW_ASSIGN_OR_RETURN(SimDuration read_cost, acc.Drain());
          ctx.Charge(read_cost);
          ckpt_cost += read_cost;
        }
      }
      SimDuration save_cost;
      MEMFLOW_RETURN_IF_ERROR(Save(key, payload, &save_cost));
      ctx.Charge(save_cost);
      ckpt_cost += save_cost;
      telemetry::TraceEvent span;
      span.type = telemetry::TraceEventType::kSpan;
      span.name = "checkpoint save";
      span.category = "checkpoint";
      span.track = kCheckpointTrack;
      span.dur = ckpt_cost;
      span.args = {{"task", std::to_string(ctx.self().actor - 1), /*quoted=*/false},
                   {"bytes", std::to_string(payload.size()), /*quoted=*/false},
                   {"checkpoint_ns", std::to_string(ckpt_cost.ns), /*quoted=*/false}};
      ctx.StageTrace(std::move(span));
      return OkStatus();
    };
  }
  return job;
}

}  // namespace memflow::rts
