// Copyright (c) memflow authors. MIT license.

#include "rts/cost_model.h"

#include <limits>

#include "common/hash.h"

namespace memflow::rts {

std::uint64_t CostModel::MemoKey(const dataflow::TaskProperties& props,
                                 std::uint64_t input_bytes, simhw::ComputeDeviceId device,
                                 simhw::MemoryDeviceId input_device) {
  // Every field Estimate() reads from `props` must be folded in here; a field
  // left out would alias distinct tasks onto one cache line of the memo.
  // `slo` is folded too even though Estimate() prices no urgency today: the
  // placement layer keys its urgency weighting off the same estimate, and an
  // aliased memo line across latency classes would be a silent trap the day
  // Estimate() starts reading it.
  const auto dbl = [](double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  };
  std::uint64_t h = MixU64(device.value);
  h = HashCombine(h, input_device.valid() ? input_device.value + 1 : 0);
  h = HashCombine(h, input_bytes);
  h = HashCombine(h, props.compute_device.has_value()
                         ? static_cast<std::uint64_t>(*props.compute_device) + 1
                         : 0);
  h = HashCombine(h, (static_cast<std::uint64_t>(props.persistent) << 2) |
                         (static_cast<std::uint64_t>(props.confidential) << 1) |
                         static_cast<std::uint64_t>(props.declassifies));
  h = HashCombine(h, static_cast<std::uint64_t>(props.mem_latency));
  h = HashCombine(h, static_cast<std::uint64_t>(props.slo));
  h = HashCombine(h, dbl(props.base_work));
  h = HashCombine(h, dbl(props.work_per_byte));
  h = HashCombine(h, dbl(props.parallel_fraction));
  h = HashCombine(h, props.output_bytes);
  h = HashCombine(h, dbl(props.output_bytes_per_input_byte));
  h = HashCombine(h, props.scratch_bytes);
  h = HashCombine(h, dbl(props.scratch_bytes_per_input_byte));
  return h;
}

std::uint64_t CostModel::ScratchBytes(const dataflow::TaskProperties& props,
                                      std::uint64_t input_bytes) {
  return props.scratch_bytes +
         static_cast<std::uint64_t>(props.scratch_bytes_per_input_byte *
                                    static_cast<double>(input_bytes));
}

std::uint64_t CostModel::OutputBytes(const dataflow::TaskProperties& props,
                                     std::uint64_t input_bytes) {
  return props.output_bytes +
         static_cast<std::uint64_t>(props.output_bytes_per_input_byte *
                                    static_cast<double>(input_bytes));
}

double CostModel::WorkUnits(const dataflow::TaskProperties& props, std::uint64_t input_bytes) {
  return props.base_work + props.work_per_byte * static_cast<double>(input_bytes);
}

Result<simhw::AccessView> CostModel::BestView(simhw::ComputeDeviceId device,
                                              const region::Properties& props,
                                              std::uint64_t size,
                                              const region::AccessHint& hint) const {
  const simhw::AccessView* best = nullptr;
  simhw::AccessView best_storage;
  std::int64_t best_cost = std::numeric_limits<std::int64_t>::max();
  for (const simhw::MemoryDeviceId mem : cluster_->AllMemoryDevices()) {
    if (cluster_->memory(mem).failed() || !cluster_->memory(mem).profile().allocatable ||
        cluster_->memory(mem).free_bytes() < size) {
      continue;
    }
    auto view = cluster_->View(device, mem);
    if (!view.ok() || !Satisfies(*view, props)) {
      continue;
    }
    const std::int64_t cost = ExpectedUseCost(*view, size, hint).ns;
    if (cost < best_cost) {
      best_cost = cost;
      best_storage = *view;
      best = &best_storage;
    }
  }
  if (best == nullptr) {
    return ResourceExhausted("no device satisfies " + props.ToString() + " from device " +
                             std::to_string(device.value));
  }
  return best_storage;
}

Result<TaskEstimate> CostModel::Estimate(const dataflow::TaskProperties& props,
                                         std::uint64_t input_bytes,
                                         simhw::ComputeDeviceId device,
                                         simhw::MemoryDeviceId input_device) const {
  const simhw::ComputeDevice& compute = cluster_->compute(device);
  if (compute.failed()) {
    return Unavailable(compute.name() + " is failed");
  }
  if (props.compute_device.has_value() && compute.kind() != *props.compute_device) {
    return FailedPrecondition("task requires " +
                              std::string(ComputeDeviceKindName(*props.compute_device)));
  }

  // Memo lookup (after the compute-device checks: those depend on state the
  // churn counter does not track). A bumped counter flushes the whole memo.
  std::uint64_t memo_key = 0;
  if (memo_churn_ != nullptr) {
    const std::uint64_t churn = memo_churn_->load(std::memory_order_acquire);
    if (churn != memo_epoch_ || memo_epoch_ == 0) {
      memo_.clear();
      memo_epoch_ = churn;
    }
    memo_key = MemoKey(props, input_bytes, device, input_device);
    const auto it = memo_.find(memo_key);
    if (it != memo_.end()) {
      ++memo_hits_;
      return it->second;
    }
    ++memo_misses_;
  }

  TaskEstimate est;
  est.compute = compute.ComputeTime(WorkUnits(props, input_bytes), props.parallel_fraction);

  // Input: streamed once from wherever it lives.
  SimDuration memory{};
  if (input_bytes > 0) {
    if (input_device.valid()) {
      MEMFLOW_ASSIGN_OR_RETURN(simhw::AccessView view, cluster_->View(device, input_device));
      memory += view.ReadCost(input_bytes, /*sequential=*/true);
    } else {
      region::Properties input_props;
      input_props.latency = props.mem_latency;
      MEMFLOW_ASSIGN_OR_RETURN(
          simhw::AccessView view,
          BestView(device, input_props, input_bytes, region::AccessHint{1.0, 1.0, 1.0}));
      memory += view.ReadCost(input_bytes, /*sequential=*/true);
    }
  }

  // Scratch: random-access working set (hash tables, model state, buffers).
  const std::uint64_t scratch = ScratchBytes(props, input_bytes);
  if (scratch > 0) {
    region::Properties scratch_props = region::Properties::PrivateScratch();
    if (props.mem_latency != region::LatencyClass::kAny) {
      scratch_props.latency = props.mem_latency;
    }
    const region::AccessHint hint{0.25, 0.5, 2.0};
    auto view = BestView(device, scratch_props, scratch, hint);
    if (!view.ok()) {
      return view.status();
    }
    est.scratch_device = view->device;
    memory += ExpectedUseCost(*view, scratch, hint);
  }

  // Output: streamed once to a device the consumer can also use.
  const std::uint64_t output = OutputBytes(props, input_bytes);
  if (output > 0) {
    region::Properties output_props;
    output_props.latency = props.mem_latency;
    output_props.persistent = props.persistent;
    MEMFLOW_ASSIGN_OR_RETURN(
        simhw::AccessView view,
        BestView(device, output_props, output, region::AccessHint{1.0, 0.0, 1.0}));
    est.output_device = view.device;
    memory += view.WriteCost(output, /*sequential=*/true);
  }

  est.memory = memory;
  est.total = est.compute + est.memory;
  // Only successful estimates are cached: error paths above depend on device
  // availability, which the churn counter does not always cover.
  if (memo_churn_ != nullptr) {
    memo_.emplace(memo_key, est);
  }
  return est;
}

}  // namespace memflow::rts
