// Copyright (c) memflow authors. MIT license.
//
// Task placement policies. The traditional explicit/naive models the paper
// argues against are implemented as first-class policies so every experiment
// can run both worlds through the same executor:
//
//   kRoundRobin  — naive: spread tasks over eligible devices blindly.
//   kFirstFit    — compute-centric: pin to the first eligible device
//                  (models static, developer-chosen placement).
//   kRandom      — chaos baseline.
//   kCostModel   — the paper's vision: minimize predicted completion time
//                  using the topology-aware cost model, load-adjusted.
//
// Every Place() call can additionally *explain itself* (DESIGN.md §11): the
// caller passes a PlacementExplain and receives the full ranked candidate
// list — per-term cost-model scores for the devices that were scored, and
// the reason each rejected device lost (kind mismatch, device down, no
// feasible memory). The runtime records these per job so a developer can ask
// "why did my task run there?" after the fact.

#ifndef MEMFLOW_RTS_PLACEMENT_H_
#define MEMFLOW_RTS_PLACEMENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dataflow/job.h"
#include "rts/cost_model.h"
#include "telemetry/metrics.h"

namespace memflow::rts {

enum class PlacementPolicyKind { kRoundRobin, kFirstFit, kRandom, kCostModel };

std::string_view PlacementPolicyKindName(PlacementPolicyKind kind);

// Why one compute device did (not) win a placement decision.
enum class CandidateOutcome : std::uint8_t {
  kChosen,            // won the ranking
  kRankedLoser,       // feasible and scored, but a better candidate existed
  kKindMismatch,      // device class != the task's declared compute_device
  kDeviceFailed,      // device is down
  kNoFeasibleMemory,  // cost model found no satisfying memory from here
};

std::string_view CandidateOutcomeName(CandidateOutcome outcome);

// One compute device's verdict in a placement decision. Score terms are only
// meaningful for kChosen/kRankedLoser (the devices that were actually
// scored): predicted completion = backlog + compute + memory.
struct PlacementCandidate {
  simhw::ComputeDeviceId device;
  CandidateOutcome outcome = CandidateOutcome::kRankedLoser;
  double backlog_ns = 0;  // committed work already planned on the device
  double compute_ns = 0;  // cost-model compute estimate for this task
  double memory_ns = 0;   // cost-model memory estimate (input+scratch+output)
  double score = 0;       // backlog + compute + memory (lower wins)
  std::string detail;     // human-readable loser/rejection reason
};

// A full placement decision record: the ranked candidate list (chosen first,
// then scored losers by score, then rejects) plus the decision inputs.
struct PlacementExplain {
  std::string policy;
  std::uint64_t input_bytes_estimate = 0;
  simhw::ComputeDeviceId chosen;  // invalid if the decision failed
  std::vector<PlacementCandidate> candidates;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Picks a compute device for `task` of `job`, given the admission-time
  // input size estimate. Returns an error if no eligible device exists.
  // `explain`, when non-null, receives the ranked candidate breakdown for
  // this decision (filled on success *and* on failure).
  virtual Result<simhw::ComputeDeviceId> Place(const dataflow::Job& job,
                                               dataflow::TaskId task,
                                               std::uint64_t input_bytes_estimate,
                                               simhw::Cluster& cluster,
                                               const CostModel& model,
                                               PlacementExplain* explain = nullptr) = 0;

  virtual std::string_view name() const = 0;

 protected:
  // Devices the task may run on: kind-compatible and alive. When `explain`
  // is non-null, ineligible devices are appended as rejected candidates.
  static std::vector<simhw::ComputeDeviceId> Eligible(const dataflow::TaskProperties& props,
                                                      const simhw::Cluster& cluster,
                                                      PlacementExplain* explain = nullptr);
};

// `registry` feeds policy-internal metrics (the cost model's predicted
// completion-time scores); nullptr means telemetry::DefaultRegistry().
std::unique_ptr<PlacementPolicy> MakePlacementPolicy(PlacementPolicyKind kind,
                                                     std::uint64_t seed = 42,
                                                     telemetry::Registry* registry = nullptr);

}  // namespace memflow::rts

#endif  // MEMFLOW_RTS_PLACEMENT_H_
