// Copyright (c) memflow authors. MIT license.
//
// Task placement policies. The traditional explicit/naive models the paper
// argues against are implemented as first-class policies so every experiment
// can run both worlds through the same executor:
//
//   kRoundRobin  — naive: spread tasks over eligible devices blindly.
//   kFirstFit    — compute-centric: pin to the first eligible device
//                  (models static, developer-chosen placement).
//   kRandom      — chaos baseline.
//   kCostModel   — the paper's vision: minimize predicted completion time
//                  using the topology-aware cost model, load-adjusted.

#ifndef MEMFLOW_RTS_PLACEMENT_H_
#define MEMFLOW_RTS_PLACEMENT_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dataflow/job.h"
#include "rts/cost_model.h"
#include "telemetry/metrics.h"

namespace memflow::rts {

enum class PlacementPolicyKind { kRoundRobin, kFirstFit, kRandom, kCostModel };

std::string_view PlacementPolicyKindName(PlacementPolicyKind kind);

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Picks a compute device for `task` of `job`, given the admission-time
  // input size estimate. Returns an error if no eligible device exists.
  virtual Result<simhw::ComputeDeviceId> Place(const dataflow::Job& job,
                                               dataflow::TaskId task,
                                               std::uint64_t input_bytes_estimate,
                                               simhw::Cluster& cluster,
                                               const CostModel& model) = 0;

  virtual std::string_view name() const = 0;

 protected:
  // Devices the task may run on: kind-compatible and alive.
  static std::vector<simhw::ComputeDeviceId> Eligible(const dataflow::TaskProperties& props,
                                                      const simhw::Cluster& cluster);
};

// `registry` feeds policy-internal metrics (the cost model's predicted
// completion-time scores); nullptr means telemetry::DefaultRegistry().
std::unique_ptr<PlacementPolicy> MakePlacementPolicy(PlacementPolicyKind kind,
                                                     std::uint64_t seed = 42,
                                                     telemetry::Registry* registry = nullptr);

}  // namespace memflow::rts

#endif  // MEMFLOW_RTS_PLACEMENT_H_
