// Copyright (c) memflow authors. MIT license.

#include "rts/runtime.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <utility>

#include "common/hash.h"
#include "common/log.h"
#include "common/strings.h"
#include "common/table.h"
#include "telemetry/export.h"

namespace memflow::rts {

namespace {

// Trace track for job-lifecycle spans (one span per job, submit -> finish).
// Device tracks use the small compute ids; region-manager events use 1000 and
// checkpoints 1001, so the job lane takes the next synthetic slot.
constexpr std::uint64_t kJobTrack = 1002;

}  // namespace

Runtime::Runtime(simhw::Cluster& cluster, RuntimeOptions options)
    : cluster_(&cluster),
      options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : &telemetry::DefaultRegistry()),
      owned_tracer_(options.tracer == nullptr ? std::make_unique<telemetry::TraceBuffer>()
                                              : nullptr),
      tracer_(options.tracer != nullptr ? options.tracer : owned_tracer_.get()),
      owned_profiler_(options.profiler == nullptr
                          ? std::make_unique<telemetry::SelfProfiler>(options.self_profile)
                          : nullptr),
      profiler_(options.profiler != nullptr ? options.profiler : owned_profiler_.get()),
      regions_(cluster, options.region_config, options.seed ^ 0xa11ccULL, registry_),
      model_(cluster),
      policy_(MakePlacementPolicy(options.policy, options.seed, registry_)) {
  MEMFLOW_CHECK(policy_ != nullptr);
  MEMFLOW_CHECK(options_.max_task_attempts >= 1);
  regions_.BindTrace(&clock_, tracer_);
  regions_.BindProfiler(profiler_);
  // Memoize placement scoring; any region churn invalidates (DESIGN.md §14).
  model_.BindInvalidationCounter(&regions_.churn_counter());

  worker_threads_ = WorkerPool::ResolveThreads(options_.worker_threads);
  if (worker_threads_ > 1) {
    // The control thread participates in draining every batch, so the pool
    // only needs worker_threads_ - 1 background threads.
    pool_ = std::make_unique<WorkerPool>(worker_threads_ - 1);
  }

  telemetry::Registry& reg = *registry_;
  instruments_.jobs_submitted =
      reg.GetCounter("rts_jobs_submitted_total", "Jobs submitted for admission");
  instruments_.jobs_completed = reg.GetCounter("rts_jobs_total", "Job outcomes",
                                               {{"result", "completed"}});
  instruments_.jobs_failed =
      reg.GetCounter("rts_jobs_total", "Job outcomes", {{"result", "failed"}});
  instruments_.jobs_rejected =
      reg.GetCounter("rts_jobs_total", "Job outcomes", {{"result", "rejected"}});
  instruments_.task_retries =
      reg.GetCounter("rts_task_retries_total", "Task attempts that were retried");
  instruments_.placement_decisions = reg.GetCounter(
      "rts_placement_decisions_total", "Successful per-task placement decisions",
      {{"policy", std::string(PlacementPolicyKindName(options_.policy))}});
  instruments_.placement_fallbacks = reg.GetCounter(
      "rts_placement_fallbacks_total",
      "Tasks re-placed because the planned device could not reach the job's Global State");
  instruments_.handovers_zero_copy = reg.GetCounter(
      "rts_handovers_total", "Task output handovers", {{"kind", "zero_copy"}});
  instruments_.handovers_copied = reg.GetCounter(
      "rts_handovers_total", "Task output handovers", {{"kind", "copied"}});
  instruments_.queue_wait_ns = reg.GetHistogram(
      "rts_task_queue_wait_ns", "Time tasks spent queued on their planned device",
      telemetry::HistogramSpec{/*first_bound=*/100.0, /*growth=*/4.0, /*buckets=*/14});
  instruments_.task_duration_ns = reg.GetHistogram(
      "rts_task_duration_ns", "Charged simulated task execution time",
      telemetry::HistogramSpec{/*first_bound=*/100.0, /*growth=*/4.0, /*buckets=*/14});
  instruments_.admission_verify_ns = reg.GetHistogram(
      "rts_admission_verify_ns", "Wall-clock time of static verification at admission",
      telemetry::HistogramSpec{/*first_bound=*/1000.0, /*growth=*/4.0, /*buckets=*/14});

  // Per-device scheduler state, indexed by id (compute ids are dense from 0).
  // Instrument handles resolve once here; dispatch does zero map lookups.
  std::uint32_t max_id = 0;
  const std::vector<simhw::ComputeDeviceId> compute_ids = cluster_->AllComputeDevices();
  for (const simhw::ComputeDeviceId id : compute_ids) {
    max_id = std::max(max_id, id.value);
  }
  device_execs_.resize(compute_ids.empty() ? 0 : max_id + 1);
  for (const simhw::ComputeDeviceId id : compute_ids) {
    const std::string name = cluster_->compute(id).name();
    DeviceExec& de = device_execs_[id.value];
    de.tasks_executed = reg.GetCounter(
        "rts_tasks_executed_total", "Tasks completed successfully", {{"device", name}});
    de.queue_depth = reg.GetGauge(
        "rts_device_queue_depth", "Tasks queued on a compute device", {{"device", name}});
    tracer_->SetTrackName(id.value, name);
  }
  tracer_->SetTrackName(kJobTrack, "jobs");
}

Result<dataflow::JobId> Runtime::Submit(dataflow::Job job) {
  return Submit(std::move(job), DispatchHints{});
}

Result<dataflow::JobId> Runtime::Submit(dataflow::Job job, const DispatchHints& hints) {
  telemetry::PhaseTimer admission_timer(profiler_, telemetry::Phase::kAdmission);
  MEMFLOW_RETURN_IF_ERROR(job.Validate());

  // Static gate: verify ownership/property/placement invariants from the
  // declarative DAG before any resource is committed.
  if (options_.verify != VerifyMode::kOff) {
    analysis::VerifyOptions vopts;
    vopts.allow_latency_relax = options_.region_config.allow_latency_relax;
    const auto verify_start = std::chrono::steady_clock::now();
    {
      telemetry::PhaseTimer verify_timer(profiler_, telemetry::Phase::kAdmissionVerify);
      last_verify_report_ = analysis::Verify(job, cluster_, vopts);
    }
    const auto verify_elapsed = std::chrono::steady_clock::now() - verify_start;
    instruments_.admission_verify_ns->Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(verify_elapsed).count()));
    for (const analysis::Diagnostic& d : last_verify_report_.diagnostics()) {
      // Cold path (one lookup per finding): analyzer verdicts by rule id.
      registry_
          ->GetCounter("analysis_rule_findings_total",
                       "Static verifier findings at admission, by rule",
                       {{"rule", std::string(d.rule)}})
          ->Increment();
      if (d.severity == analysis::Severity::kError) {
        MEMFLOW_LOG(kWarn) << "verify(" << job.name() << "): " << d.ToString();
      } else {
        MEMFLOW_LOG(kInfo) << "verify(" << job.name() << "): " << d.ToString();
      }
    }
    if (options_.verify == VerifyMode::kEnforce && !last_verify_report_.ok()) {
      stats_.jobs_submitted++;
      stats_.jobs_rejected++;
      stats_.jobs_rejected_by_verifier++;
      instruments_.jobs_submitted->Increment();
      instruments_.jobs_rejected->Increment();
      return FailedPrecondition("job '" + job.name() +
                                "' rejected by static verifier: " +
                                last_verify_report_.Summary());
    }
  } else {
    last_verify_report_ = analysis::Report{};
  }

  const auto id = dataflow::JobId(next_job_id_++);
  auto exec = std::make_unique<JobExec>(id, std::move(job));
  exec->verify_report = last_verify_report_;
  exec->report.id = id;
  exec->report.name = exec->job.name();
  exec->report.submitted = clock_.now();
  exec->tasks.resize(exec->job.num_tasks());
  exec->remaining_tasks = exec->job.num_tasks();
  exec->parallel_safe = analysis::JobParallelSafe(exec->job);
  exec->hints = hints;
  stats_.jobs_submitted++;
  instruments_.jobs_submitted->Increment();

  const Status planned = Plan(*exec);
  if (!planned.ok()) {
    stats_.jobs_rejected++;
    instruments_.jobs_rejected->Increment();
    // Undo any global-region allocation made during planning.
    if (exec->state_region.valid()) {
      (void)regions_.ForceFree(exec->state_region);
    }
    if (exec->scratch_region.valid()) {
      (void)regions_.ForceFree(exec->scratch_region);
    }
    return planned;
  }

  const std::size_t index = jobs_.size();
  exec->index = index;
  jobs_.push_back(std::move(exec));

  // Start the job inside the event loop so concurrently submitted jobs
  // interleave deterministically by submission order.
  events_.Schedule(clock_.now(), [this, index](SimTime) {
    JobExec& je = *jobs_[index];
    for (const dataflow::TaskId t : je.job.Sources()) {
      EnqueueTask(je, t);
    }
  });
  return id;
}

Status Runtime::Plan(JobExec& exec) {
  const dataflow::Job& job = exec.job;
  const std::vector<dataflow::TaskId> order = job.TopologicalOrder();

  // Input size estimates propagate forward through the DAG.
  for (const dataflow::TaskId t : order) {
    TaskExec& te = exec.tasks[t.value];
    te.remaining_inputs = static_cast<int>(job.predecessors(t).size());
    std::uint64_t est = 0;
    for (const dataflow::TaskId p : job.DataPredecessors(t)) {
      est += CostModel::OutputBytes(job.task(p).props, exec.tasks[p.value].est_input_bytes);
    }
    te.est_input_bytes = est;
    PlacementDecision decision;
    decision.task = t;
    decision.task_name = job.task(t).name;
    decision.at = clock_.now();
    {
      telemetry::PhaseTimer place_timer(profiler_, telemetry::Phase::kPlacementScore);
      MEMFLOW_ASSIGN_OR_RETURN(
          te.planned, policy_->Place(job, t, est, *cluster_, model_, &decision.explain));
    }
    exec.placement_log.push_back(std::move(decision));
    instruments_.placement_decisions->Increment();
  }

  const region::Principal job_principal = JobPrincipalFor(exec);
  const dataflow::JobOptions& jopts = job.options();

  // Global State (Table 2): coherent + sync, shared by every task. Pick a
  // device every planned observer can coherently reach — on heterogeneous
  // hosts that is typically the CXL expander, not socket DRAM (a GPU cannot
  // coherently reach DRAM over plain PCIe).
  if (jopts.global_state_bytes > 0) {
    std::vector<simhw::ComputeDeviceId> observers;
    for (const dataflow::TaskId t : order) {
      const simhw::ComputeDeviceId dev = exec.tasks[t.value].planned;
      if (std::find(observers.begin(), observers.end(), dev) == observers.end()) {
        observers.push_back(dev);
      }
    }
    region::Properties state_props = region::Properties::GlobalState();
    state_props.confidential = jopts.confidential;
    const region::AccessHint state_hint{0.0, 0.5, 4.0};  // latches: random, reread

    simhw::MemoryDeviceId best_device;
    std::int64_t best_cost = std::numeric_limits<std::int64_t>::max();
    for (const simhw::MemoryDeviceId mem : cluster_->AllMemoryDevices()) {
      if (cluster_->memory(mem).failed() || !cluster_->memory(mem).profile().allocatable ||
          cluster_->memory(mem).free_bytes() < jopts.global_state_bytes) {
        continue;
      }
      std::int64_t total = 0;
      bool feasible = true;
      for (const simhw::ComputeDeviceId obs : observers) {
        auto view = cluster_->View(obs, mem);
        if (!view.ok() || !Satisfies(*view, state_props)) {
          feasible = false;
          break;
        }
        total += ExpectedUseCost(*view, jopts.global_state_bytes, state_hint).ns;
      }
      if (feasible && total < best_cost) {
        best_cost = total;
        best_device = mem;
      }
    }

    if (best_device.valid()) {
      MEMFLOW_ASSIGN_OR_RETURN(exec.state_region,
                               regions_.AllocateOn(best_device, jopts.global_state_bytes,
                                                   state_props, job_principal));
    } else {
      // No single device reaches everyone; allocate from the first task's
      // viewpoint and let per-task re-placement (below) sort out the rest.
      region::RegionManager::AllocRequest request;
      request.size = jopts.global_state_bytes;
      request.props = state_props;
      request.hint = state_hint;
      request.observer = exec.tasks[order.front().value].planned;
      request.owner = job_principal;
      MEMFLOW_ASSIGN_OR_RETURN(exec.state_region, regions_.Allocate(request));
    }

    for (const dataflow::TaskId t : order) {
      TaskExec& te = exec.tasks[t.value];
      Status shared = regions_.Share(exec.state_region, job_principal, TaskPrincipal(exec, t),
                                     te.planned, /*require_coherent=*/true);
      if (!shared.ok()) {
        // The planned device cannot coherently reach the job's Global State:
        // try to re-place the task inside the coherence domain.
        auto info = regions_.Info(exec.state_region);
        MEMFLOW_CHECK(info.ok());
        bool replaced = false;
        for (const simhw::ComputeDeviceId alt : cluster_->AllComputeDevices()) {
          const simhw::ComputeDevice& dev = cluster_->compute(alt);
          if (dev.failed()) {
            continue;
          }
          const auto& props = job.task(t).props;
          if (props.compute_device.has_value() && dev.kind() != *props.compute_device) {
            continue;
          }
          auto view = cluster_->View(alt, info->device);
          if (!view.ok() || !view->coherent) {
            continue;
          }
          if (regions_.Share(exec.state_region, job_principal, TaskPrincipal(exec, t), alt,
                             true)
                  .ok()) {
            const simhw::ComputeDeviceId original = te.planned;
            te.planned = alt;
            replaced = true;
            instruments_.placement_fallbacks->Increment();
            telemetry::TraceEvent ev;
            ev.type = telemetry::TraceEventType::kInstant;
            ev.name = "placement fallback: global-state reach";
            ev.category = "placement";
            ev.track = alt.value;
            ev.job = exec.id.value;
            ev.ts = clock_.now();
            ev.args = {{"task", job.task(t).name},
                       {"from", cluster_->compute(original).name()},
                       {"to", cluster_->compute(alt).name()}};
            tracer_->Emit(std::move(ev));
            break;
          }
        }
        if (!replaced) {
          return FailedPrecondition(
              "task '" + job.task(t).name +
              "' cannot coherently reach the job's Global State from any eligible device");
        }
      }
    }
  }

  // Global Scratch (Table 2): shared data exchange, async access suffices.
  if (jopts.global_scratch_bytes > 0) {
    region::RegionManager::AllocRequest request;
    request.size = jopts.global_scratch_bytes;
    request.props = region::Properties::GlobalScratch();
    request.props.confidential = jopts.confidential;
    request.hint = region::AccessHint{0.8, 0.6, 1.0};
    request.observer = exec.tasks[order.front().value].planned;
    request.owner = job_principal;
    MEMFLOW_ASSIGN_OR_RETURN(exec.scratch_region, regions_.Allocate(request));
    for (const dataflow::TaskId t : order) {
      MEMFLOW_RETURN_IF_ERROR(regions_.Share(exec.scratch_region, job_principal,
                                             TaskPrincipal(exec, t),
                                             exec.tasks[t.value].planned,
                                             /*require_coherent=*/false));
    }
  }
  return OkStatus();
}

Runtime::DeviceExec& Runtime::device_exec(simhw::ComputeDeviceId device) {
  MEMFLOW_CHECK(device.value < device_execs_.size());
  return device_execs_[device.value];
}

void Runtime::UpdateQueueDepth(DeviceExec& de) {
  de.queue_depth->Set(static_cast<double>(de.queue.size()));
}

void Runtime::EnqueueTask(JobExec& exec, dataflow::TaskId task) {
  TaskExec& te = exec.tasks[task.value];
  te.state = TaskExec::State::kQueued;
  te.ready = clock_.now();
  if (!te.arrived) {
    te.arrived = true;
    te.arrival = te.ready;
  }
  DeviceExec& de = device_exec(te.planned);
  de.queue.push_back(QueueEntry{exec.hints.priority, exec.hints.fair_key, de.next_seq++,
                                exec.index, task});
  std::push_heap(de.queue.begin(), de.queue.end(),
                 [](const QueueEntry& a, const QueueEntry& b) { return PopsBefore(b, a); });
  UpdateQueueDepth(de);
  PumpDevice(te.planned);
}

void Runtime::PumpDevice(simhw::ComputeDeviceId device) {
  DeviceExec& de = device_exec(device);
  simhw::ComputeDevice& dev = cluster_->compute(device);
  while (!de.queue.empty() && !dev.failed() && dev.active_tasks < dev.profile().hw_queues) {
    std::pop_heap(de.queue.begin(), de.queue.end(),
                  [](const QueueEntry& a, const QueueEntry& b) { return PopsBefore(b, a); });
    const QueueEntry entry = de.queue.back();
    de.queue.pop_back();
    JobExec& exec = *jobs_[entry.job_index];
    if (exec.failed || exec.tasks[entry.task.value].state != TaskExec::State::kQueued) {
      continue;  // job died while queued
    }
    StageDispatch(exec, entry.task);
  }
  UpdateQueueDepth(de);
}

void Runtime::StageDispatch(JobExec& exec, dataflow::TaskId task) {
  telemetry::PhaseTimer stage_timer(profiler_, telemetry::Phase::kStage);
  TaskExec& te = exec.tasks[task.value];
  const dataflow::TaskSpec& spec = exec.job.task(task);
  simhw::ComputeDevice& dev = cluster_->compute(te.planned);

  dev.active_tasks++;
  te.state = TaskExec::State::kRunning;
  te.attempts++;
  te.report.start = clock_.now();
  const SimDuration queue_wait = clock_.now() - te.ready;
  instruments_.queue_wait_ns->Observe(static_cast<double>(queue_wait.ns));
  if (queue_wait.ns > 0) {
    telemetry::TraceEvent span;
    span.type = telemetry::TraceEventType::kSpan;
    span.name = "queue " + spec.name;
    span.category = "queue";
    span.track = te.planned.value;
    span.job = exec.id.value;
    span.ts = te.ready;
    span.dur = queue_wait;
    span.args = {{"task", std::to_string(task.value), /*quoted=*/false},
                 {"attempt", std::to_string(te.attempts), /*quoted=*/false}};
    tracer_->Emit(std::move(span));
  }

  // Close the producer->consumer flow arrows opened at handover: the arrow
  // lands where (and when) the consumer actually starts.
  for (const std::uint64_t flow : te.pending_flows) {
    telemetry::TraceEvent end;
    end.type = telemetry::TraceEventType::kFlowEnd;
    end.name = "handover";
    end.category = "flow";
    end.track = te.planned.value;
    end.job = exec.id.value;
    end.ts = clock_.now();
    end.flow_id = flow;
    tracer_->Emit(std::move(end));
  }
  te.pending_flows.clear();

  // Output goes where the consumer will read it (Figure 4): use the first
  // data successor's planned device as the observer for output allocation
  // (control edges carry no data, so they never read the output).
  simhw::ComputeDeviceId output_observer = te.planned;
  const std::vector<dataflow::TaskId> data_succs = exec.job.DataSuccessors(task);
  if (!data_succs.empty()) {
    output_observer = exec.tasks[data_succs.front().value].planned;
  }

  dataflow::TaskContext::Init init;
  init.regions = &regions_;
  init.self = TaskPrincipal(exec, task);
  init.device = te.planned;
  init.output_observer = output_observer;
  init.props = spec.props;
  init.inputs = te.inputs;

  // Cross-check (verifier layer 3): hand the statically computed ownership
  // states to the context, so accessors can assert the executor delivered
  // exactly what the analysis predicted.
  if (options_.verify != VerifyMode::kOff) {
    for (const dataflow::TaskId p : exec.job.DataPredecessors(task)) {
      const region::RegionId in = exec.tasks[p.value].output;
      const auto expected = exec.verify_report.ExpectedStateOf(task, p);
      if (in.valid() && expected.has_value()) {
        init.expected_input_states.emplace_back(in, *expected);
      }
    }
  }
  init.global_state = exec.state_region;
  init.global_scratch = exec.scratch_region;
  init.rng_seed = HashCombine(HashCombine(options_.seed, exec.id.value),
                              (static_cast<std::uint64_t>(task.value) << 8) |
                                  static_cast<std::uint64_t>(te.attempts));

  // The body does not run here: it joins the current virtual-time step's
  // batch and executes (possibly concurrently) in ExecuteBatch.
  PendingBody body;
  body.job_index = exec.index;
  body.task = task;
  body.device = te.planned;
  if (options_.hot_path_pools && !ctx_pool_.empty()) {
    body.ctx = std::move(ctx_pool_.back());
    ctx_pool_.pop_back();
    body.ctx->Reset(std::move(init));
  } else {
    body.ctx = std::make_unique<dataflow::TaskContext>(std::move(init));
  }
  batch_.push_back(std::move(body));
}

void Runtime::RunBody(PendingBody& body) {
  // On the control thread this nests under batch-run; on a pool thread it has
  // no parent and lands in the profiler's workers tree (overlapping time).
  telemetry::PhaseTimer body_timer(profiler_, telemetry::Phase::kBody);
  JobExec& exec = *jobs_[body.job_index];
  const dataflow::TaskSpec& spec = exec.job.task(body.task);
  body.result = spec.fn(*body.ctx);
}

void Runtime::ExecuteBatch() {
  // active_batch_ is a member only so its capacity survives across batches;
  // ExecuteBatch has exactly one call site (RunToCompletion) and never
  // reenters, so it is always empty here.
  MEMFLOW_CHECK(active_batch_.empty());
  std::vector<PendingBody>& batch = active_batch_;
  batch.swap(batch_);  // commits may stage new bodies; keep them separate

  // Record which same-job task pairs share this batch (the dynamic face of
  // the static MHP relation). Staging is serial and identical at every
  // worker count, so the recorded pairs are too — they are recorded even
  // when the batch then runs on one thread. Non-parallel-safe jobs are
  // skipped: their bodies execute as one serial chain, never concurrently.
  for (std::size_t a = 0; a < batch.size(); ++a) {
    for (std::size_t b = a + 1; b < batch.size(); ++b) {
      if (batch[a].job_index != batch[b].job_index) {
        continue;
      }
      JobExec& exec = *jobs_[batch[a].job_index];
      if (!exec.parallel_safe) {
        continue;
      }
      const auto pair = std::minmax(batch[a].task, batch[b].task);
      exec.observed_concurrent.emplace_back(pair.first, pair.second);
      // Executor/analyzer cross-check: every observed pair must have been
      // predicted statically. A miss is an analyzer soundness bug.
      const analysis::MhpSummary& mhp = exec.verify_report.mhp();
      if (options_.verify != VerifyMode::kOff &&
          mhp.num_tasks == exec.job.num_tasks() &&
          !mhp.MayRunConcurrently(pair.first, pair.second)) {
        stats_.mhp_divergences++;
        MEMFLOW_LOG(kError) << "mhp cross-check: job '" << exec.job.name()
                            << "' tasks #" << pair.first.value << " and #"
                            << pair.second.value
                            << " share a batch outside the predicted MHP set";
      }
    }
  }

  // --- parallel run phase -----------------------------------------------------
  //
  // Placement scoring is frozen for the whole batch so the ranking each body
  // sees is independent of its siblings' allocation order.
  regions_.BeginAllocationEpoch();
  telemetry::PhaseTimer run_timer(profiler_, telemetry::Phase::kBatchRun);
  if (pool_ != nullptr && batch.size() > 1) {
    // Bodies of a non-parallel-safe job form one chain and run in staging
    // order (preserving the serial executor's same-step semantics for jobs
    // whose tasks communicate through shared regions); every other body is a
    // chain of its own. Chains execute concurrently on the pool.
    // chain_storage_/chain_of_job_ are pre-sized members reused across
    // batches: no per-batch map, no per-chain heap allocation in steady state.
    if (chain_of_job_.size() < jobs_.size()) {
      chain_of_job_.resize(jobs_.size(), kNoChain);
    }
    std::size_t num_chains = 0;
    const auto new_chain = [this, &num_chains]() -> std::vector<std::size_t>& {
      if (num_chains == chain_storage_.size()) {
        chain_storage_.emplace_back();
      }
      std::vector<std::size_t>& chain = chain_storage_[num_chains++];
      chain.clear();
      return chain;
    };
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::size_t job_index = batch[i].job_index;
      if (jobs_[job_index]->parallel_safe) {
        new_chain().push_back(i);
        continue;
      }
      if (chain_of_job_[job_index] == kNoChain) {
        chain_of_job_[job_index] = static_cast<std::uint32_t>(num_chains);
        new_chain().push_back(i);
      } else {
        chain_storage_[chain_of_job_[job_index]].push_back(i);
      }
    }
    for (const PendingBody& body : batch) {
      chain_of_job_[body.job_index] = kNoChain;  // reset only touched entries
    }
    std::vector<std::function<void()>> closures;
    closures.reserve(num_chains);
    for (std::size_t c = 0; c < num_chains; ++c) {
      closures.push_back([this, &batch, chain = &chain_storage_[c]] {
        for (const std::size_t i : *chain) {
          RunBody(batch[i]);
        }
      });
    }
    pool_->RunBatch(std::move(closures));
  } else {
    for (PendingBody& body : batch) {
      RunBody(body);
    }
  }
  run_timer.Stop();
  regions_.EndAllocationEpoch();

  // --- serial commit phase ----------------------------------------------------
  //
  // Fixed (device id, job, task id) order, independent of both the staging
  // order and the interleaving of the run phase. The order array is dispatch
  // scratch, so it lives on the arena (reset each loop iteration).
  std::size_t* order = arena_.AllocateArray<std::size_t>(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    order[i] = i;
  }
  std::sort(order, order + batch.size(), [&batch](std::size_t a, std::size_t b) {
    const PendingBody& x = batch[a];
    const PendingBody& y = batch[b];
    if (x.device != y.device) {
      return x.device < y.device;
    }
    if (x.job_index != y.job_index) {
      return x.job_index < y.job_index;
    }
    return x.task < y.task;
  });
  telemetry::PhaseTimer commit_timer(profiler_, telemetry::Phase::kBatchCommit);
  for (std::size_t k = 0; k < batch.size(); ++k) {
    CommitBody(batch[order[k]]);
  }
  commit_timer.Stop();

  // Retire the batch: contexts go back to the pool (their vectors keep their
  // capacity for the next Reset), the batch vector keeps its own.
  if (options_.hot_path_pools) {
    for (PendingBody& body : batch) {
      if (body.ctx != nullptr) {
        ctx_pool_.push_back(std::move(body.ctx));
      }
    }
  }
  batch.clear();
}

void Runtime::CommitBody(PendingBody& body) {
  JobExec& exec = *jobs_[body.job_index];
  TaskExec& te = exec.tasks[body.task.value];
  dataflow::TaskContext& ctx = *body.ctx;
  te.scratch = ctx.scratch_regions();
  te.output = ctx.output();

  // Flush trace events the body staged (bodies must not touch the shared
  // ring mid-flight; commit order makes the stream deterministic).
  for (telemetry::TraceEvent& event : ctx.staged_trace()) {
    event.ts = clock_.now();
    event.job = exec.id.value;
    if (event.track == 0) {
      event.track = body.device.value;
    }
    tracer_->Emit(std::move(event));
  }
  ctx.staged_trace().clear();

  if (!body.result.ok()) {
    const simhw::ComputeDeviceId freed_slot = te.planned;
    cluster_->compute(te.planned).active_tasks--;
    OnAttemptFailed(exec, body.task, body.result);  // may re-plan te.planned
    PumpDevice(freed_slot);
    return;
  }

  te.duration = ctx.charged();
  const std::size_t job_index = body.job_index;
  const dataflow::TaskId task = body.task;
  events_.Schedule(clock_.now() + te.duration, [this, job_index, task](SimTime) {
    OnTaskComplete(*jobs_[job_index], task);
  });
}

void Runtime::OnAttemptFailed(JobExec& exec, dataflow::TaskId task, const Status& error) {
  TaskExec& te = exec.tasks[task.value];
  MEMFLOW_LOG(kInfo) << "task '" << exec.job.task(task).name << "' attempt " << te.attempts
                     << " failed: " << error.ToString();

  // Roll back this attempt's allocations.
  for (const region::RegionId r : te.scratch) {
    (void)regions_.ForceFree(r);
  }
  te.scratch.clear();
  if (te.output.valid()) {
    (void)regions_.ForceFree(te.output);
    te.output = region::RegionId{};
  }

  if (exec.failed) {
    // The job tore down while this body was in flight; FailJob skipped it (it
    // was kRunning), so drop its inputs here instead of retrying.
    te.state = TaskExec::State::kFailed;
    te.report.status = error;
    for (const region::RegionId r : te.inputs) {
      (void)regions_.ForceFree(r);
    }
    return;
  }
  if (te.attempts >= options_.max_task_attempts) {
    te.state = TaskExec::State::kFailed;
    te.report.status = error;
    FailJob(exec, error);
    return;
  }

  stats_.task_retries++;
  instruments_.task_retries->Increment();
  {
    telemetry::TraceEvent retry;
    retry.type = telemetry::TraceEventType::kInstant;
    retry.name = "retry " + exec.job.task(task).name;
    retry.category = "task";
    retry.track = te.planned.value;
    retry.job = exec.id.value;
    retry.ts = clock_.now();
    retry.args = {{"attempt", std::to_string(te.attempts), /*quoted=*/false},
                  {"error", error.message()}};
    tracer_->Emit(std::move(retry));
  }
  // Re-place (the original device may have failed) and retry after backoff.
  PlacementDecision decision;
  decision.task = task;
  decision.task_name = exec.job.task(task).name;
  decision.at = clock_.now();
  decision.replan = true;
  telemetry::PhaseTimer place_timer(profiler_, telemetry::Phase::kPlacementScore);
  auto placed = policy_->Place(exec.job, task, te.est_input_bytes, *cluster_, model_,
                               &decision.explain);
  place_timer.Stop();
  exec.placement_log.push_back(std::move(decision));
  if (!placed.ok()) {
    te.state = TaskExec::State::kFailed;
    te.report.status = placed.status();
    FailJob(exec, placed.status());
    return;
  }
  te.planned = *placed;
  instruments_.placement_decisions->Increment();
  te.state = TaskExec::State::kWaiting;
  const std::size_t job_index = exec.index;
  events_.Schedule(clock_.now() + options_.retry_backoff, [this, job_index, task](SimTime) {
    JobExec& je = *jobs_[job_index];
    if (!je.failed && je.tasks[task.value].state == TaskExec::State::kWaiting) {
      EnqueueTask(je, task);
    }
  });
}

void Runtime::OnTaskComplete(JobExec& exec, dataflow::TaskId task) {
  TaskExec& te = exec.tasks[task.value];
  simhw::ComputeDevice& dev = cluster_->compute(te.planned);
  dev.active_tasks--;
  dev.planned_ns = std::max(0.0, dev.planned_ns - static_cast<double>(te.duration.ns));
  device_exec(te.planned).busy += te.duration;
  PumpDevice(te.planned);

  if (exec.failed) {
    // Job died while this task was in flight; drop everything it held
    // (FailJob skipped running tasks to avoid racing this event).
    for (const region::RegionId r : te.scratch) {
      (void)regions_.ForceFree(r);
    }
    if (te.output.valid()) {
      (void)regions_.ForceFree(te.output);
    }
    for (const region::RegionId r : te.inputs) {
      (void)regions_.ForceFree(r);
    }
    return;
  }

  if (dev.failed()) {
    // The device crashed while the task was running: the attempt is void.
    OnAttemptFailed(exec, task, Unavailable(dev.name() + " crashed mid-task"));
    return;
  }

  // Private scratch dies with the task (§2.3: "only alive during execution").
  const region::Principal self = TaskPrincipal(exec, task);
  for (const region::RegionId r : te.scratch) {
    (void)regions_.Free(r, self);
  }
  te.scratch.clear();

  const Status handover = HandoverOutput(exec, task);
  if (!handover.ok()) {
    // Leave the running state before teardown: FailJob skips running tasks
    // (their completion event cleans up), but *this* is that completion event
    // -- if the task stayed kRunning, its output and inputs would leak.
    te.state = TaskExec::State::kFailed;
    te.report.status = handover;
    FailJob(exec, handover);
    return;
  }

  // Inputs are consumed: drop our reference; the region frees itself when the
  // last owner lets go.
  for (const region::RegionId r : te.inputs) {
    (void)regions_.Release(r, self);
  }

  te.state = TaskExec::State::kDone;
  stats_.tasks_executed++;
  te.report.task = task;
  te.report.name = exec.job.task(task).name;
  te.report.device = te.planned;
  te.report.output = te.output;
  te.report.finish = clock_.now();
  te.report.duration = te.duration;
  te.report.attempts = te.attempts;

  device_exec(te.planned).tasks_executed->Increment();
  instruments_.task_duration_ns->Observe(static_cast<double>(te.duration.ns));

  {
    telemetry::TraceEvent span;
    span.type = telemetry::TraceEventType::kSpan;
    span.name = te.report.name;
    span.category = "task";
    span.track = te.planned.value;
    span.job = exec.id.value;
    span.ts = te.report.start;
    span.dur = te.duration;
    span.args = {{"task", std::to_string(task.value), /*quoted=*/false},
                 {"arrival_ns", std::to_string(te.arrival.ns), /*quoted=*/false},
                 {"ready_ns", std::to_string(te.ready.ns), /*quoted=*/false},
                 {"attempts", std::to_string(te.attempts), /*quoted=*/false},
                 {"handover_ns", std::to_string(te.report.handover_cost.ns),
                  /*quoted=*/false},
                 {"zero_copy", te.report.zero_copy_handover ? "true" : "false",
                  /*quoted=*/false}};
    tracer_->Emit(std::move(span));
  }
  if (te.report.handover_cost.ns > 0) {
    telemetry::TraceEvent span;
    span.type = telemetry::TraceEventType::kSpan;
    span.name = "handover " + te.report.name;
    span.category = "handover";
    span.track = te.planned.value;
    span.job = exec.id.value;
    span.ts = clock_.now();
    span.dur = te.report.handover_cost;
    span.args = {{"bytes", "0", /*quoted=*/false}};
    if (te.output.valid()) {
      auto info = regions_.Info(te.output);
      if (info.ok()) {
        span.args = {{"bytes", std::to_string(info->size), /*quoted=*/false}};
      }
    }
    tracer_->Emit(std::move(span));
  }

  // Wake successors once the (possibly non-zero-cost) handover lands.
  // Control edges carry no data, but they still gate the successor — emit a
  // flow arrow for them too, so the executed DAG is fully reconstructible
  // from the trace stream alone (data-edge flows were opened in
  // HandoverOutput).
  const std::size_t job_index = exec.index;
  const std::vector<dataflow::TaskId> data_succs = exec.job.DataSuccessors(task);
  for (const dataflow::TaskId succ : exec.job.successors(task)) {
    const bool is_data =
        std::find(data_succs.begin(), data_succs.end(), succ) != data_succs.end();
    if (!is_data) {
      BeginHandoverFlow(exec, task, succ, "control");
    } else if (!te.output.valid()) {
      // Data edge whose producer made no output: HandoverOutput had nothing
      // to move (and opened no flow), but the edge still gated the successor.
      BeginHandoverFlow(exec, task, succ, "empty");
    }
    events_.Schedule(clock_.now() + te.report.handover_cost,
                     [this, job_index, succ](SimTime) {
                       JobExec& je = *jobs_[job_index];
                       if (!je.failed) {
                         DeliverInput(je, succ);
                       }
                     });
  }

  exec.remaining_tasks--;
  if (exec.remaining_tasks == 0) {
    FinishJob(exec);
  }
}

Status Runtime::HandoverOutput(JobExec& exec, dataflow::TaskId task) {
  TaskExec& te = exec.tasks[task.value];
  if (!te.output.valid()) {
    return OkStatus();  // no output produced; successors get fewer inputs
  }
  const region::Principal self = TaskPrincipal(exec, task);
  const std::vector<dataflow::TaskId> succs = exec.job.DataSuccessors(task);

  if (succs.empty()) {
    // Sink (or every out-edge is control-only): the job keeps the result
    // until teardown (persistent outputs outlive the job; see FinishJob).
    MEMFLOW_ASSIGN_OR_RETURN(
        SimDuration cost,
        regions_.Transfer(te.output, self, JobPrincipalFor(exec), te.planned));
    te.report.handover_cost = cost;
    te.report.zero_copy_handover = cost.ns == 0;
    exec.report.outputs.push_back(te.output);
    return OkStatus();
  }

  const bool sole_shared =
      succs.size() == 1 &&
      exec.job.edge_options(task, succs.front()).mode == dataflow::EdgeMode::kShare;
  if (succs.size() == 1 && !sole_shared) {
    const dataflow::TaskId succ = succs.front();
    MEMFLOW_ASSIGN_OR_RETURN(
        SimDuration cost,
        regions_.Transfer(te.output, self, TaskPrincipal(exec, succ),
                          exec.tasks[succ.value].planned));
    te.report.handover_cost = cost;
    te.report.zero_copy_handover = cost.ns == 0;
    (te.report.zero_copy_handover ? stats_.zero_copy_handovers : stats_.copied_handovers)++;
    (te.report.zero_copy_handover ? instruments_.handovers_zero_copy
                                  : instruments_.handovers_copied)
        ->Increment();
    exec.tasks[succ.value].inputs.push_back(te.output);
    BeginHandoverFlow(exec, task, succ, "transfer");
    return OkStatus();
  }

  // Fan-out (or an explicitly shared sole consumer): the output becomes
  // shared between all data successors. This is a completed-producer handoff,
  // so async access suffices for far consumers.
  for (const dataflow::TaskId succ : succs) {
    MEMFLOW_RETURN_IF_ERROR(regions_.Share(te.output, self, TaskPrincipal(exec, succ),
                                           exec.tasks[succ.value].planned,
                                           /*require_coherent=*/false));
    exec.tasks[succ.value].inputs.push_back(te.output);
    BeginHandoverFlow(exec, task, succ, "share");
  }
  MEMFLOW_RETURN_IF_ERROR(regions_.Release(te.output, self));
  te.report.handover_cost = SimDuration{};
  te.report.zero_copy_handover = true;
  stats_.zero_copy_handovers++;
  instruments_.handovers_zero_copy->Increment();
  return OkStatus();
}

void Runtime::BeginHandoverFlow(JobExec& exec, dataflow::TaskId producer,
                                dataflow::TaskId consumer, std::string_view kind) {
  TaskExec& pe = exec.tasks[producer.value];
  const std::uint64_t flow = tracer_->NextFlowId();
  telemetry::TraceEvent begin;
  begin.type = telemetry::TraceEventType::kFlowBegin;
  begin.name = "handover";
  begin.category = "flow";
  begin.track = pe.planned.value;
  begin.job = exec.id.value;
  begin.ts = clock_.now();
  begin.flow_id = flow;
  begin.args = {{"src", std::to_string(producer.value), /*quoted=*/false},
                {"dst", std::to_string(consumer.value), /*quoted=*/false},
                {"handover_ns", std::to_string(pe.report.handover_cost.ns),
                 /*quoted=*/false},
                {"kind", std::string(kind)}};
  tracer_->Emit(std::move(begin));
  exec.tasks[consumer.value].pending_flows.push_back(flow);
}

void Runtime::DeliverInput(JobExec& exec, dataflow::TaskId task) {
  TaskExec& te = exec.tasks[task.value];
  MEMFLOW_CHECK(te.remaining_inputs > 0);
  te.remaining_inputs--;
  if (te.remaining_inputs == 0 && te.state == TaskExec::State::kWaiting) {
    EnqueueTask(exec, task);
  }
}

void Runtime::FinishJob(JobExec& exec) {
  exec.finished = true;
  exec.report.finished = clock_.now();
  exec.report.status = OkStatus();
  for (const TaskExec& te : exec.tasks) {
    exec.report.tasks.push_back(te.report);
  }
  if (exec.state_region.valid()) {
    (void)regions_.ForceFree(exec.state_region);
  }
  if (exec.scratch_region.valid()) {
    (void)regions_.ForceFree(exec.scratch_region);
  }
  stats_.jobs_completed++;
  instruments_.jobs_completed->Increment();
  {
    telemetry::TraceEvent span;
    span.type = telemetry::TraceEventType::kSpan;
    span.name = "job " + exec.report.name;
    span.category = "job";
    span.track = kJobTrack;
    span.job = exec.id.value;
    span.ts = exec.report.submitted;
    span.dur = exec.report.Makespan();
    span.args = {{"tasks", std::to_string(exec.report.tasks.size()), /*quoted=*/false},
                 {"status", "ok"}};
    tracer_->Emit(std::move(span));
  }
  MEMFLOW_LOG(kInfo) << "job finished" << Kv("job", exec.report.name)
                     << Kv("makespan", HumanDuration(exec.report.Makespan()));
  if (job_observer_) {
    job_observer_(exec.report);
  }
}

void Runtime::FailJob(JobExec& exec, const Status& error) {
  if (exec.failed || exec.finished) {
    return;
  }
  exec.failed = true;
  exec.finished = true;
  exec.report.finished = clock_.now();
  exec.report.status = error;
  // Release everything the job still holds. In-flight tasks clean themselves
  // up when their completion events observe exec.failed.
  for (TaskExec& te : exec.tasks) {
    if (te.state == TaskExec::State::kRunning) {
      continue;
    }
    for (const region::RegionId r : te.scratch) {
      (void)regions_.ForceFree(r);
    }
    te.scratch.clear();
    for (const region::RegionId r : te.inputs) {
      (void)regions_.ForceFree(r);
    }
    if (te.output.valid()) {
      (void)regions_.ForceFree(te.output);
      te.output = region::RegionId{};
    }
  }
  for (const region::RegionId r : exec.report.outputs) {
    (void)regions_.ForceFree(r);
  }
  exec.report.outputs.clear();
  for (const TaskExec& te : exec.tasks) {
    exec.report.tasks.push_back(te.report);
  }
  if (exec.state_region.valid()) {
    (void)regions_.ForceFree(exec.state_region);
  }
  if (exec.scratch_region.valid()) {
    (void)regions_.ForceFree(exec.scratch_region);
  }
  stats_.jobs_failed++;
  instruments_.jobs_failed->Increment();
  {
    telemetry::TraceEvent span;
    span.type = telemetry::TraceEventType::kSpan;
    span.name = "job " + exec.report.name;
    span.category = "job";
    span.track = kJobTrack;
    span.job = exec.id.value;
    span.ts = exec.report.submitted;
    span.dur = exec.report.Makespan();
    span.args = {{"tasks", std::to_string(exec.report.tasks.size()), /*quoted=*/false},
                 {"status", "failed"},
                 {"error", error.message()}};
    tracer_->Emit(std::move(span));
  }
  MEMFLOW_LOG(kWarn) << "job failed" << Kv("job", exec.report.name)
                     << Kv("error", error.ToString());
  if (job_observer_) {
    job_observer_(exec.report);
  }
}

void Runtime::ApplyFaultsDue(SimTime now) {
  if (faults_ == nullptr) {
    return;
  }
  if (faults_->ApplyDue(now) == 0) {
    return;
  }
  // Any applied fault (device or link) can change placement/cost answers the
  // region manager cannot observe itself — invalidate the cost-model memo.
  regions_.NoteExternalChurn();
  // Volatile regions on failed devices are gone; record that.
  for (const simhw::MemoryDeviceId dev : cluster_->AllMemoryDevices()) {
    if (cluster_->memory(dev).failed()) {
      const auto lost = regions_.MarkLostOn(dev);
      if (!lost.empty()) {
        MEMFLOW_LOG(kInfo) << lost.size() << " regions lost on "
                           << cluster_->memory(dev).name();
      }
    }
  }
}

void Runtime::AttachFaultInjector(simhw::FaultInjector* injector) {
  faults_ = injector;
  fault_events_scheduled_ = false;
}

void Runtime::ScheduleAt(SimTime at, std::function<void(SimTime)> fn) {
  MEMFLOW_CHECK_MSG(at >= clock_.now(), "ScheduleAt into the past");
  events_.Schedule(at, std::move(fn));
}

void Runtime::TickSnapshotRing() {
  profiler_->PublishTo(*registry_);
  regions_.access_profiler().PublishTo(*registry_);
  telemetry::PublishTraceHealth(*tracer_, *registry_);
  options_.snapshot_ring->Tick(clock_.now());
  next_snapshot_ = clock_.now() + options_.snapshot_interval;
}

Status Runtime::RunToCompletion() {
  if (faults_ != nullptr && !fault_events_scheduled_) {
    for (const SimTime t : faults_->PendingTimes()) {
      events_.Schedule(t, [this](SimTime now) { ApplyFaultsDue(now); });
    }
    fault_events_scheduled_ = true;
  }
  // Conservative-PDES loop: drain every event at the current virtual time
  // first (each may stage more bodies), and only then execute the staged
  // batch — so the batch is maximal and its composition depends solely on the
  // (deterministic) event order, never on worker count. Time advances only
  // while no bodies are staged.
  while (!events_.empty() || !batch_.empty()) {
    // Per-dispatch scratch (commit order and friends) dies here; in steady
    // state the arena hands the same blocks back without touching the heap.
    arena_.Reset();
    // Ring ticks run *between* dispatch scopes, when no control-plane timer
    // is open, so every snapshot sees fully flushed counters and the
    // per-phase breakdown telescopes exactly in every ring entry.
    if (options_.snapshot_ring != nullptr && clock_.now() >= next_snapshot_) {
      TickSnapshotRing();
    }
    telemetry::PhaseTimer dispatch_timer(profiler_, telemetry::Phase::kDispatch);
    if (!batch_.empty() && (events_.empty() || events_.next_time() > clock_.now())) {
      ExecuteBatch();
      continue;
    }
    telemetry::PhaseTimer drain_timer(profiler_, telemetry::Phase::kEventDrain);
    // Drain the whole same-timestamp cohort in one pass (one clock advance,
    // one loop dispatch) instead of re-entering per event. Semantically
    // identical to draining them one RunNext at a time: same-time events the
    // callbacks schedule carry later seqs, and later-timestamped events stay
    // queued for the next iteration.
    events_.RunAllDue(clock_);
  }
  if (options_.snapshot_ring != nullptr) {
    TickSnapshotRing();  // final state, whatever the interval phase
  }
  for (const auto& exec : jobs_) {
    if (!exec->finished) {
      return Internal("job '" + exec->report.name +
                      "' neither finished nor failed: scheduler stuck");
    }
  }
  return OkStatus();
}

Result<JobReport> Runtime::SubmitAndRun(dataflow::Job job) {
  MEMFLOW_ASSIGN_OR_RETURN(dataflow::JobId id, Submit(std::move(job)));
  MEMFLOW_RETURN_IF_ERROR(RunToCompletion());
  return report(id);
}

const JobReport& Runtime::report(dataflow::JobId id) const {
  for (const auto& exec : jobs_) {
    if (exec->id == id) {
      return exec->report;
    }
  }
  MEMFLOW_CHECK_MSG(false, "unknown job id");
  __builtin_unreachable();
}

const std::vector<PlacementDecision>& Runtime::PlacementLog(dataflow::JobId id) const {
  for (const auto& exec : jobs_) {
    if (exec->id == id) {
      return exec->placement_log;
    }
  }
  MEMFLOW_CHECK_MSG(false, "unknown job id");
  __builtin_unreachable();
}

const analysis::Report& Runtime::VerifyReportOf(dataflow::JobId id) const {
  for (const auto& exec : jobs_) {
    if (exec->id == id) {
      return exec->verify_report;
    }
  }
  MEMFLOW_CHECK_MSG(false, "unknown job id");
  __builtin_unreachable();
}

const std::vector<std::pair<dataflow::TaskId, dataflow::TaskId>>&
Runtime::ObservedConcurrentPairs(dataflow::JobId id) const {
  for (const auto& exec : jobs_) {
    if (exec->id == id) {
      return exec->observed_concurrent;
    }
  }
  MEMFLOW_CHECK_MSG(false, "unknown job id");
  __builtin_unreachable();
}

Result<const dataflow::Job*> Runtime::GetJob(dataflow::JobId id) const {
  for (const auto& exec : jobs_) {
    if (exec->id == id) {
      return &exec->job;
    }
  }
  return NotFound("unknown job");
}

region::Principal Runtime::JobPrincipal(dataflow::JobId id) const {
  return region::Principal{id.value, 0};
}

Status Runtime::ReleaseJobOutputs(dataflow::JobId id) {
  for (auto& exec : jobs_) {
    if (exec->id == id) {
      for (const region::RegionId r : exec->report.outputs) {
        (void)regions_.ForceFree(r);
      }
      exec->report.outputs.clear();
      return OkStatus();
    }
  }
  return NotFound("unknown job");
}

std::string Runtime::UtilizationReport() const {
  TextTable mem({"Memory device", "Kind", "Capacity", "Used", "Util%", "Reads", "Writes"});
  for (const simhw::MemoryDeviceId id : cluster_->AllMemoryDevices()) {
    const simhw::MemoryDevice& dev = cluster_->memory(id);
    mem.AddRow({dev.name(), std::string(MemoryDeviceKindName(dev.profile().kind)),
                HumanBytes(dev.capacity()), HumanBytes(dev.used()),
                FormatDouble(dev.utilization() * 100.0, 1),
                WithThousands(dev.stats().reads), WithThousands(dev.stats().writes)});
  }
  TextTable comp({"Compute device", "Kind", "Busy time"});
  for (const simhw::ComputeDeviceId id : cluster_->AllComputeDevices()) {
    const simhw::ComputeDevice& dev = cluster_->compute(id);
    const SimDuration busy =
        id.value < device_execs_.size() ? device_execs_[id.value].busy : SimDuration{};
    comp.AddRow({dev.name(), std::string(ComputeDeviceKindName(dev.kind())),
                 HumanDuration(busy)});
  }
  return mem.Render() + comp.Render();
}

}  // namespace memflow::rts
